// Package cpu implements a cycle-level out-of-order superscalar core in the
// style of the Alpha 21264 the paper models (§3): 4-wide fetch through an
// instruction fetch queue, register rename (modeled as a last-writer
// scoreboard over the architectural registers with the ROB bounding the
// window), separate integer / floating-point / memory issue queues with
// oldest-first select, pipelined functional units, a two-ported data cache
// with MSHR-limited misses, and in-order commit.
//
// The core is trace-driven (see internal/trace) but timing-faithful: branch
// mispredictions stall and redirect the front end through a real tournament
// predictor, instruction and data accesses go through real caches, and
// fetch gating — the paper's ILP DTM technique — gates the fetch stage
// (I-cache access and branch prediction included) on a deterministic duty
// pattern. Whether gating costs performance is decided by the pipeline:
// while the fetch queue and window keep the issue stages fed, gated fetch
// cycles are hidden by ILP, which is the architectural phenomenon the
// hybrid DTM policy exploits (§4.2).
//
// Pipeline state is laid out structure-of-arrays (see DESIGN.md "Pipeline
// kernels"): the ROB and fetch queue are parallel flat slices indexed by
// ring position with power-of-two masks, preallocated at New, and the
// batched kernels in kernel.go advance the pipeline over runs of cycles
// between DTM-visible boundaries. The cycle-at-a-time loop in this file is
// retained as the reference semantics; the kernels are proven equivalent
// against it by the equivalence and fuzz tests.
package cpu

import (
	"fmt"

	"hybriddtm/internal/bpred"
	"hybriddtm/internal/cache"
	"hybriddtm/internal/obs"
	"hybriddtm/internal/stats"
	"hybriddtm/internal/trace"
)

// Config sizes the pipeline. DefaultConfig gives the 21264-like machine
// used throughout the paper's experiments.
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IntIssueWidth int
	FPIssueWidth  int
	MemIssueWidth int
	CommitWidth   int

	ROBSize  int
	IFQSize  int
	IntQSize int
	FPQSize  int
	LSQSize  int

	MispredictPenalty int // front-end redirect cycles after resolution

	IntMulLatency int
	FPAddLatency  int
	FPMulLatency  int

	MSHRs int // maximum outstanding data-cache misses

	BPred  bpred.Config
	Caches cache.HierarchyConfig
}

// DefaultConfig returns the 21264-like configuration: 4-wide fetch and
// dispatch, 4 integer / 2 FP / 2 memory issue ports, 80-entry window.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		DispatchWidth: 4,
		IntIssueWidth: 4,
		FPIssueWidth:  2,
		MemIssueWidth: 2,
		CommitWidth:   6,

		ROBSize:  80,
		IFQSize:  16,
		IntQSize: 20,
		FPQSize:  15,
		LSQSize:  32,

		MispredictPenalty: 7,

		IntMulLatency: 7,
		FPAddLatency:  4,
		FPMulLatency:  4,

		MSHRs: 8,

		BPred:  bpred.DefaultConfig(),
		Caches: cache.DefaultHierarchy(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	pos := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"DispatchWidth", c.DispatchWidth},
		{"IntIssueWidth", c.IntIssueWidth}, {"FPIssueWidth", c.FPIssueWidth},
		{"MemIssueWidth", c.MemIssueWidth}, {"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize}, {"IFQSize", c.IFQSize},
		{"IntQSize", c.IntQSize}, {"FPQSize", c.FPQSize}, {"LSQSize", c.LSQSize},
		{"IntMulLatency", c.IntMulLatency}, {"FPAddLatency", c.FPAddLatency},
		{"FPMulLatency", c.FPMulLatency}, {"MSHRs", c.MSHRs},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("cpu: %s = %d must be positive", p.name, p.v)
		}
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("cpu: negative mispredict penalty %d", c.MispredictPenalty)
	}
	return nil
}

// fetch-block states.
const (
	blockNone         = iota
	blockWaitDispatch // mispredicted branch fetched but not yet in the ROB
	blockWaitResolve  // waiting for the branch at blockSeq to execute
)

// unknownReady is the issueQueue.minReady sentinel: no queued entry has a
// computable ready-at cycle (every stalled entry waits on an un-issued
// producer).
const unknownReady = ^uint64(0)

// issueQueue is one issue domain's scheduler, event-driven: only entries
// whose ready-at cycle is already known live in the ready list (sorted by
// sequence number, so a walk is an oldest-first scan of genuinely
// schedulable work); entries still waiting on an un-issued producer are
// represented only by the unknown counter and the producer wakeup lists,
// and enter the ready list when their last producer issues. minReady is a
// lower bound on the earliest cycle at which any queued entry can issue:
// walks recompute it exactly, dispatch and wakeups only ever lower it, so
// while cycle < minReady a walk provably selects nothing and the batched
// kernels skip it. A walk that leaves ready-but-unissued entries behind
// (width or MSHR limits) pins it at or below the current cycle, forcing a
// walk every cycle until the backlog drains.
//
// A wakeup that lands while the queue's own walk is in progress (an
// instruction issued this walk waking a same-domain consumer) is parked in
// pending and folded in at the end of the walk: the consumer's ready-at is
// at least cycle+1, so deferring its insertion past the in-progress scan
// cannot change what issues this cycle.
type issueQueue struct {
	ready    []uint64 // un-issued, ready-at known, sorted by seq
	pending  []uint64 // wakeups deferred while walking
	unknown  int      // un-issued entries waiting on a producer
	walking  bool
	minReady uint64
}

// size returns the number of queued (un-issued) instructions, the quantity
// dispatch checks against the queue's capacity.
func (q *issueQueue) size() int { return len(q.ready) + q.unknown }

// noteReady lowers the queue's ready watermark for a newly computed
// ready-at cycle.
func (q *issueQueue) noteReady(ra uint64) {
	if ra < q.minReady {
		q.minReady = ra
	}
}

// insertReady places seq into the ready list keeping sequence order.
// Wakeups arrive mostly in age order, so the insertion scan from the tail
// is short in practice.
func (q *issueQueue) insertReady(seq uint64) {
	r := append(q.ready, seq) //dtmlint:allow allocguard bounded by the queue capacity; cap settles during warm-up
	i := len(r) - 1
	for i > 0 && r[i-1] > seq {
		r[i] = r[i-1]
		i--
	}
	r[i] = seq
	q.ready = r
}

// enqueueReady routes a newly known-ready entry: parked while the queue's
// own walk is scanning, inserted directly otherwise.
func (q *issueQueue) enqueueReady(seq uint64, ra uint64) {
	if q.walking {
		q.pending = append(q.pending, seq) //dtmlint:allow allocguard bounded by the queue capacity; cap settles during warm-up
		return
	}
	q.insertReady(seq)
	q.noteReady(ra)
}

// Core is the simulated processor. Not safe for concurrent use; run one
// Core per goroutine.
//
// All ring state is structure-of-arrays: the ROB fields live in parallel
// slices indexed by seq&robMask, the fetch queue in parallel slices indexed
// by position&ifqMask. Both are padded to powers of two at New so the hot
// loops index with a mask instead of a division; masking stays injective
// because at most ROBSize (resp. IFQSize) entries are ever in flight.
type Core struct {
	cfg Config
	gen trace.Source
	bp  *bpred.Predictor
	mem *cache.Hierarchy

	cycle      uint64
	head, tail uint64 // ROB sequence numbers: [head, tail) in flight

	// ROB, structure-of-arrays. A slot is fully overwritten at dispatch,
	// so stale fields from retired instructions are never observable.
	robMask    uint64
	robClass   []trace.Class
	robDst     []uint8
	robDep1    []uint64 // writer seq+1; 0 = no dependence
	robDep2    []uint64
	robAddr    []uint64
	robIssued  []bool
	robDoneAt  []uint64
	robMispred []bool
	robSeq     []uint64 // full sequence number of the slot's occupant
	// robReadyAt holds the cycle at which both sources are available (0 =
	// not yet known because a producer has not issued). It is computed
	// eagerly — at dispatch when every producer has already issued,
	// otherwise by the wakeup walk when the last outstanding producer
	// issues — so the issue walks are pure compare loops with no
	// producer-chasing on the hot path.
	robReadyAt []uint64
	// robMissing counts un-issued producers at dispatch; the entry's
	// ready-at is computed when it reaches zero.
	robMissing []uint8
	// Producer→consumer wakeup lists, allocation-free linked lists over
	// fixed arrays: wakeHead[p] is the first wake node of the instructions
	// waiting on producer slot p; node id n = consumerSlot*2+depIndex
	// (each consumer has at most two producers, so two node slots per ROB
	// slot suffice); wakeNext[n] chains them. Stored values are node id+1,
	// 0 = end of list. A producer's list is consumed exactly once, at its
	// issue, which happens before any waiter can issue and therefore
	// before either slot is reused — so no stale links survive.
	wakeHead []int32
	wakeNext []int32

	regWriter [64]uint64 // seq+1 of last writer per architectural register

	// Fetch queue, structure-of-arrays.
	ifqMask    int
	ifqHead    int
	ifqCount   int
	ifqClass   []trace.Class
	ifqDst     []uint8
	ifqSrc1    []uint8
	ifqSrc2    []uint8
	ifqAddr    []uint64
	ifqMispred []bool

	intQ, fpQ, memQ issueQueue

	// issues counts every instruction issued, across all domains; the
	// batched kernels use it to detect dead cycles (no issue anywhere).
	issues uint64

	gateAcc float64 // fetch-gating duty accumulator
	// Per-domain issue gating accumulators (local toggling, §2): a gated
	// cycle suppresses that domain's issue stage.
	intGateAcc, fpGateAcc, memGateAcc float64

	fetchStallUntil uint64 // I-cache miss in service
	blockState      int
	blockSeq        uint64

	pending      trace.Inst // lookahead instruction from the trace
	pendingValid bool

	mshr []uint64 // completion cycles of outstanding data misses

	memLatency int // off-chip latency in cycles at the current frequency

	committed uint64

	// referencePath forces the cycle-at-a-time loop (see
	// UseReferencePipeline); the equivalence and fuzz tests diff it
	// against the batched kernels.
	referencePath bool
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a core running the given trace source (a synthetic generator
// or a recorded-trace reader). All pipeline storage — ROB and fetch-queue
// arrays, issue queues, MSHR list — is preallocated here; the simulation
// paths never touch the heap (enforced by the AllocsPerRun==0 contracts).
func New(cfg Config, gen trace.Source) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gen == nil {
		return nil, fmt.Errorf("cpu: nil trace generator")
	}
	bp, err := bpred.New(cfg.BPred)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		return nil, err
	}
	robCap := nextPow2(cfg.ROBSize)
	ifqCap := nextPow2(cfg.IFQSize)
	c := &Core{
		cfg: cfg,
		gen: gen,
		bp:  bp,
		mem: mem,

		robMask:    uint64(robCap - 1),
		robClass:   make([]trace.Class, robCap),
		robDst:     make([]uint8, robCap),
		robDep1:    make([]uint64, robCap),
		robDep2:    make([]uint64, robCap),
		robAddr:    make([]uint64, robCap),
		robIssued:  make([]bool, robCap),
		robDoneAt:  make([]uint64, robCap),
		robMispred: make([]bool, robCap),
		robSeq:     make([]uint64, robCap),
		robReadyAt: make([]uint64, robCap),
		robMissing: make([]uint8, robCap),
		wakeHead:   make([]int32, robCap),
		wakeNext:   make([]int32, 2*robCap),

		ifqMask:    ifqCap - 1,
		ifqClass:   make([]trace.Class, ifqCap),
		ifqDst:     make([]uint8, ifqCap),
		ifqSrc1:    make([]uint8, ifqCap),
		ifqSrc2:    make([]uint8, ifqCap),
		ifqAddr:    make([]uint64, ifqCap),
		ifqMispred: make([]bool, ifqCap),

		mshr:       make([]uint64, 0, cfg.MSHRs),
		memLatency: cfg.Caches.MemLatency,
	}
	for _, qc := range [...]struct {
		q   *issueQueue
		cap int
	}{{&c.intQ, cfg.IntQSize}, {&c.fpQ, cfg.FPQSize}, {&c.memQ, cfg.LSQSize}} {
		qc.q.ready = make([]uint64, 0, qc.cap)
		qc.q.pending = make([]uint64, 0, qc.cap)
		qc.q.minReady = unknownReady
	}
	return c, nil
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Predictor exposes the branch predictor (for statistics).
func (c *Core) Predictor() *bpred.Predictor { return c.bp }

// Caches exposes the cache hierarchy (for statistics).
func (c *Core) Caches() *cache.Hierarchy { return c.mem }

// Cycle returns the total cycles simulated.
func (c *Core) Cycle() uint64 { return c.cycle }

// Committed returns the total instructions committed.
func (c *Core) Committed() uint64 { return c.committed }

// InFlight returns the number of instructions currently in the window
// (dispatched, not yet committed).
func (c *Core) InFlight() uint64 { return c.tail - c.head }

// IPC returns lifetime committed instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.committed) / float64(c.cycle)
}

// UseReferencePipeline toggles the cycle-at-a-time reference loop in place
// of the batched kernels. Both paths simulate the identical machine — the
// equivalence harness and FuzzCoreRun diff them instruction-for-instruction
// — so this is a validation hook, not a behavioral knob.
func (c *Core) UseReferencePipeline(on bool) { c.referencePath = on }

// SetFrequencyRatio adjusts the off-chip memory latency for the current
// clock, f/fNominal. On-chip latencies are expressed in cycles and scale
// with the clock automatically; main-memory time is fixed in nanoseconds,
// so at a lower clock it spans proportionally fewer cycles — one of the
// reasons DVS hurts memory-bound code less.
func (c *Core) SetFrequencyRatio(ratio float64) error {
	if !(ratio > 0) || ratio > 1 {
		return fmt.Errorf("cpu: frequency ratio %v outside (0,1]", ratio)
	}
	lat := int(float64(c.cfg.Caches.MemLatency)*ratio + 0.5)
	if lat < 1 {
		lat = 1
	}
	c.memLatency = lat
	return nil
}

// Gates bundles the gating fractions applied while running: Fetch is the
// paper's fetch-gating knob; Int, FP and Mem gate the corresponding issue
// stages (local toggling, §2 — the technique the paper found to confer
// little advantage over fetch gating; implemented here so that comparison
// can be reproduced).
type Gates struct {
	Fetch, Int, FP, Mem float64
}

func (g Gates) validate() error {
	for _, v := range [...]float64{g.Fetch, g.Int, g.FP, g.Mem} {
		if !stats.SameFloat(v, 0) && (v < 0 || v >= 1) {
			return fmt.Errorf("cpu: gate fraction %v outside [0,1)", v)
		}
	}
	return nil
}

// issueGatesZero reports whether no issue-domain gate is active; the fast
// kernels specialize on this (a gateTick with fraction 0 adds 0.0 to the
// accumulator and never gates, so eliding it is bit-exact).
func issueGatesZero(g Gates) bool {
	return stats.SameFloat(g.Int, 0) && stats.SameFloat(g.FP, 0) && stats.SameFloat(g.Mem, 0)
}

// Run simulates n cycles with the given fetch-gating fraction (0 = no
// gating, 0.5 = fetch gated every other cycle…), accumulating activity
// counts into act (which may be nil) and returning instructions committed
// during this call.
//
//dtmlint:allocfree
func (c *Core) Run(n uint64, gateFrac float64, act *Activity) (uint64, error) {
	return c.RunGated(n, Gates{Fetch: gateFrac}, act)
}

// RunGated is Run with the full set of gating knobs.
//
//dtmlint:allocfree
func (c *Core) RunGated(n uint64, gates Gates, act *Activity) (uint64, error) {
	return c.run(n, gates, act, nil)
}

// RunGatedProfiled is RunGated with per-stage attribution: on a sampled
// thermal step core passes the run's StageProfiler and the pipeline loop
// attributes each stage (commit, the three issue domains, dispatch,
// fetch, plus the bpred and cache accesses inside them) with chained
// monotonic timestamps. Unsampled steps take RunGated, so sp here is
// never a disabled profiler — but every call site still carries the
// hoisted `if sp != nil` guard, which is both the tracegate-enforced
// idiom and what keeps the profiler-off path (sp == nil) at one
// predicted branch per site.
//
// Laps are placed at batch boundaries, not per cycle: one fully-staged
// cycle opens each profileStride-cycle mini-batch and its per-stage times
// are extrapolated over the batch (obs.StageProfiler.LapN); the remaining
// cycles run through the batched kernels. See kernel.go.
//
//dtmlint:allocfree
func (c *Core) RunGatedProfiled(n uint64, gates Gates, act *Activity, sp *obs.StageProfiler) (uint64, error) {
	return c.run(n, gates, act, sp)
}

// run validates and dispatches to the pipeline loops: the batched kernels
// in kernel.go on the hot path, the cycle-at-a-time reference loop when
// requested, with profiler variants of each.
func (c *Core) run(n uint64, gates Gates, act *Activity, sp *obs.StageProfiler) (uint64, error) {
	if err := gates.validate(); err != nil {
		return 0, err
	}
	var sink Activity
	if act == nil {
		act = &sink
	}
	start := c.committed
	switch {
	case c.referencePath:
		c.runScalar(n, gates, act, sp)
	case sp != nil:
		c.runProfiled(n, gates, act, sp)
	default:
		c.runBatched(n, gates, act)
	}
	act.Cycles += n
	return c.committed - start, nil
}

// runScalar is the cycle-at-a-time reference loop: five stage calls per
// cycle, gate accumulators ticked every cycle, laps per cycle when sp is
// non-nil. The batched kernels must match it bit for bit.
func (c *Core) runScalar(n uint64, gates Gates, act *Activity, sp *obs.StageProfiler) {
	for i := uint64(0); i < n; i++ {
		c.cycle++
		if sp != nil {
			sp.Mark()
		}
		c.commit(act)
		if sp != nil {
			sp.Lap(obs.StageCPUCommit)
		}
		c.issue(gates, act, sp, 1)
		c.dispatch(act)
		if sp != nil {
			sp.Lap(obs.StageCPUDispatch)
		}
		c.fetch(gates.Fetch, act, sp, 1)
		if sp != nil {
			sp.Lap(obs.StageCPUFetch)
		}
	}
}

// gateTick advances a duty accumulator and reports whether this cycle is
// gated.
func gateTick(acc *float64, frac float64) bool {
	*acc += frac
	if *acc >= 1 {
		*acc--
		return true
	}
	return false
}

// commit retires completed instructions in order.
func (c *Core) commit(act *Activity) {
	for n := 0; n < c.cfg.CommitWidth && c.head < c.tail; n++ {
		i := c.head & c.robMask
		if !c.robIssued[i] || c.robDoneAt[i] > c.cycle {
			return
		}
		c.head++
		c.committed++
		act.Committed++
	}
}

// readyAtResolved computes the ready-at cycle of the ROB entry at slot i
// once every producer has issued (or committed): the max of the in-window
// producers' completion times, clamped to 1 because cycle counting starts
// at 1 and 0 is the "unknown" sentinel. A producer that commits before
// this runs contributes its doneAt instead of 0, which is equivalent: a
// committed producer's doneAt is already in the past at every cycle where
// the difference could be observed.
func (c *Core) readyAtResolved(i uint64) uint64 {
	ra := uint64(0)
	if dep := c.robDep1[i]; dep != 0 {
		if seq := dep - 1; seq >= c.head {
			ra = c.robDoneAt[seq&c.robMask]
		}
	}
	if dep := c.robDep2[i]; dep != 0 {
		if seq := dep - 1; seq >= c.head {
			if d := c.robDoneAt[seq&c.robMask]; d > ra {
				ra = d
			}
		}
	}
	if ra == 0 {
		ra = 1
	}
	return ra
}

// queueFor maps an instruction class to its issue queue.
func (c *Core) queueFor(cls trace.Class) *issueQueue {
	switch cls {
	case trace.Load, trace.Store:
		return &c.memQ
	case trace.FPAdd, trace.FPMul:
		return &c.fpQ
	default:
		return &c.intQ
	}
}

// wake walks the wakeup list of the producer at slot pi (which has just
// issued, so its doneAt is known): each waiter loses one outstanding
// producer, and a waiter whose count reaches zero gets its ready-at
// computed and its queue's watermark lowered. Waiters are always younger
// than the producer, so a wakeup never touches an entry an in-progress
// walk has already passed.
func (c *Core) wake(pi uint64) {
	n := c.wakeHead[pi]
	if n == 0 {
		return
	}
	c.wakeHead[pi] = 0
	for n != 0 {
		node := n - 1
		n = c.wakeNext[node]
		ci := uint64(node) >> 1
		if m := c.robMissing[ci] - 1; m != 0 {
			c.robMissing[ci] = m
			continue
		}
		c.robMissing[ci] = 0
		ra := c.readyAtResolved(ci)
		c.robReadyAt[ci] = ra
		q := c.queueFor(c.robClass[ci])
		q.unknown--
		q.enqueueReady(c.robSeq[ci], ra)
	}
}

// issue selects ready instructions oldest-first per queue, skipping
// domains whose issue stage is gated this cycle. scale is the profiler
// extrapolation factor (cycles represented by this lapped cycle; 1 on the
// reference path).
func (c *Core) issue(gates Gates, act *Activity, sp *obs.StageProfiler, scale uint64) {
	if !gateTick(&c.intGateAcc, gates.Int) {
		c.issueInt(act)
	}
	if sp != nil {
		sp.LapN(obs.StageCPUIssueInt, scale)
	}
	if !gateTick(&c.fpGateAcc, gates.FP) {
		c.issueFP(act)
	}
	if sp != nil {
		sp.LapN(obs.StageCPUIssueFP, scale)
	}
	if !gateTick(&c.memGateAcc, gates.Mem) {
		c.issueMem(act, sp, scale)
	}
	if sp != nil {
		sp.LapN(obs.StageCPUIssueMem, scale)
	}
}

// drainWalk finishes a walk: publishes the compacted ready list and exact
// watermark, then folds in wakeups parked during the scan.
func (q *issueQueue) drainWalk(out []uint64, minReady uint64, robReadyAt []uint64, robMask uint64) {
	q.ready = out
	q.minReady = minReady
	q.walking = false
	if len(q.pending) > 0 {
		for _, seq := range q.pending {
			q.insertReady(seq)
			q.noteReady(robReadyAt[seq&robMask])
		}
		q.pending = q.pending[:0]
	}
}

func (c *Core) issueInt(act *Activity) {
	q := &c.intQ
	q.walking = true
	w := q.ready
	out := w[:0]
	issued := 0
	minReady := uint64(unknownReady)
	width := c.cfg.IntIssueWidth
	for k, seq := range w {
		if issued >= width {
			// Width exhausted with backlog: bulk-keep the tail and force a
			// walk next cycle.
			out = append(out, w[k:]...) //dtmlint:allow allocguard in-place filter reuses the ready list backing array
			minReady = c.cycle
			break
		}
		i := seq & c.robMask
		ra := c.robReadyAt[i]
		if ra > c.cycle {
			out = append(out, seq) //dtmlint:allow allocguard in-place filter reuses the ready list backing array
			if ra < minReady {
				minReady = ra
			}
			continue
		}
		issued++
		c.robIssued[i] = true
		if c.robClass[i] == trace.IntMul {
			c.robDoneAt[i] = c.cycle + uint64(c.cfg.IntMulLatency)
			act.IntMulIssued++
		} else { // IntALU, Branch
			c.robDoneAt[i] = c.cycle + 1
		}
		act.IntIssued++
		c.countRegs(i, act)
		c.wake(i)
	}
	q.drainWalk(out, minReady, c.robReadyAt, c.robMask)
	c.issues += uint64(issued)
}

func (c *Core) issueFP(act *Activity) {
	q := &c.fpQ
	q.walking = true
	w := q.ready
	out := w[:0]
	issued := 0
	minReady := uint64(unknownReady)
	width := c.cfg.FPIssueWidth
	for k, seq := range w {
		if issued >= width {
			out = append(out, w[k:]...) //dtmlint:allow allocguard in-place filter reuses the ready list backing array
			minReady = c.cycle
			break
		}
		i := seq & c.robMask
		ra := c.robReadyAt[i]
		if ra > c.cycle {
			out = append(out, seq) //dtmlint:allow allocguard in-place filter reuses the ready list backing array
			if ra < minReady {
				minReady = ra
			}
			continue
		}
		issued++
		c.robIssued[i] = true
		if c.robClass[i] == trace.FPMul {
			c.robDoneAt[i] = c.cycle + uint64(c.cfg.FPMulLatency)
			act.FPMulIssued++
		} else {
			c.robDoneAt[i] = c.cycle + uint64(c.cfg.FPAddLatency)
			act.FPAddIssued++
		}
		c.countRegs(i, act)
		c.wake(i)
	}
	q.drainWalk(out, minReady, c.robReadyAt, c.robMask)
	c.issues += uint64(issued)
}

func (c *Core) issueMem(act *Activity, sp *obs.StageProfiler, scale uint64) {
	// Retire completed MSHRs first. When the minReady watermark skips this
	// walk the filter is deferred; the live set (t > cycle) is monotonic
	// in cycle, so filtering late yields the identical list.
	live := c.mshr[:0]
	for _, t := range c.mshr {
		if t > c.cycle {
			live = append(live, t) //dtmlint:allow allocguard in-place filter reuses the MSHR backing array
		}
	}
	c.mshr = live

	q := &c.memQ
	q.walking = true
	w := q.ready
	out := w[:0]
	issued := 0
	minReady := uint64(unknownReady)
	width := c.cfg.MemIssueWidth
	for k, seq := range w {
		if issued >= width {
			out = append(out, w[k:]...) //dtmlint:allow allocguard in-place filter reuses the ready list backing array
			minReady = c.cycle
			break
		}
		i := seq & c.robMask
		ra := c.robReadyAt[i]
		if ra > c.cycle {
			out = append(out, seq) //dtmlint:allow allocguard in-place filter reuses the ready list backing array
			if ra < minReady {
				minReady = ra
			}
			continue
		}
		if len(c.mshr) >= c.cfg.MSHRs {
			// No miss capacity left: structural stall for the memory
			// pipeline this cycle. The kept entry is ready now, so its
			// ready-at (≤ cycle) holds the watermark down and forces a walk
			// every cycle until an MSHR retires — an MSHR can retire
			// without an issue event, so the block must not be skipped
			// over.
			out = append(out, seq)
			if ra < minReady {
				minReady = ra
			}
			continue
		}
		issued++
		c.robIssued[i] = true
		// Carve the cache access out of the issue_mem interval so the
		// "cache" stage is a leaf and fractions stay disjoint.
		if sp != nil {
			sp.LapN(obs.StageCPUIssueMem, scale)
		}
		res := c.mem.Data(c.robAddr[i])
		if sp != nil {
			sp.LapN(obs.StageCache, scale)
		}
		act.DCacheAccesses++
		act.DTBAccesses++
		lat := c.cfg.Caches.L1D.Latency
		if !res.L1Hit {
			act.L2Accesses++
			lat += c.cfg.Caches.L2.Latency
			if !res.L2Hit {
				lat += c.memLatency
			}
			c.mshr = append(c.mshr, c.cycle+uint64(lat)) //dtmlint:allow allocguard bounded by cfg.MSHRs; cap settles during warm-up
		}
		if c.robClass[i] == trace.Store {
			// Stores complete into the store buffer immediately; the cache
			// fill proceeds in the background (MSHR accounted above).
			c.robDoneAt[i] = c.cycle + 1
		} else {
			c.robDoneAt[i] = c.cycle + uint64(lat)
		}
		act.MemIssued++
		c.countRegs(i, act)
		c.wake(i)
	}
	q.drainWalk(out, minReady, c.robReadyAt, c.robMask)
	c.issues += uint64(issued)
}

// countRegs charges register-file read/write energy for the issuing
// instruction in ROB slot i.
func (c *Core) countRegs(i uint64, act *Activity) {
	cls := c.robClass[i]
	c.countRegRead(c.robDep1[i], cls, act)
	c.countRegRead(c.robDep2[i], cls, act)
	if dst := c.robDst[i]; dst != trace.NoReg {
		if dst >= 32 {
			act.FPRegWrites++
		} else {
			act.IntRegWrites++
		}
	}
}

// countRegRead charges one source-operand read, banked by the destination
// register of the producing instruction (integer registers are 0..31, FP
// 32..63).
func (c *Core) countRegRead(dep uint64, cls trace.Class, act *Activity) {
	if dep == 0 {
		return
	}
	seq := dep - 1
	var reg uint8
	if seq < c.head {
		// Writer committed; its register bank is not recoverable from
		// the ROB, so attribute by consumer class.
		if cls.IsFP() {
			reg = 32
		}
	} else {
		reg = c.robDst[seq&c.robMask]
	}
	if reg >= 32 {
		act.FPRegReads++
	} else {
		act.IntRegReads++
	}
}

// dispatch moves instructions from the fetch queue into the window.
func (c *Core) dispatch(act *Activity) {
	for n := 0; n < c.cfg.DispatchWidth && c.ifqCount > 0; n++ {
		if c.tail-c.head >= uint64(c.cfg.ROBSize) {
			return // window full
		}
		fi := c.ifqHead & c.ifqMask
		cls := c.ifqClass[fi]
		// Issue-queue space.
		q := c.queueFor(cls)
		switch cls {
		case trace.Load, trace.Store:
			if q.size() >= c.cfg.LSQSize {
				return
			}
			act.MemDispatched++
		case trace.FPAdd, trace.FPMul:
			if q.size() >= c.cfg.FPQSize {
				return
			}
			act.FPDispatched++
		default:
			if q.size() >= c.cfg.IntQSize {
				return
			}
			act.IntDispatched++
		}
		seq := c.tail
		c.tail++
		i := seq & c.robMask
		dst := c.ifqDst[fi]
		c.robClass[i] = cls
		c.robDst[i] = dst
		c.robAddr[i] = c.ifqAddr[fi]
		c.robMispred[i] = c.ifqMispred[fi]
		c.robIssued[i] = false
		c.robDoneAt[i] = 0
		c.robSeq[i] = seq
		var d1, d2 uint64
		if s := c.ifqSrc1[fi]; s != trace.NoReg {
			d1 = c.regWriter[s]
		}
		if s := c.ifqSrc2[fi]; s != trace.NoReg {
			d2 = c.regWriter[s]
		}
		c.robDep1[i] = d1
		c.robDep2[i] = d2
		if dst != trace.NoReg {
			c.regWriter[dst] = seq + 1
		}
		// Register with un-issued producers' wakeup lists; if every
		// producer has already issued (or committed), the ready-at is
		// known right now and the entry goes straight to the ready list
		// (it is the youngest, so insertion is an append).
		missing := uint8(0)
		if d1 != 0 {
			if p := d1 - 1; p >= c.head {
				if pi := p & c.robMask; !c.robIssued[pi] {
					c.wakeNext[i<<1] = c.wakeHead[pi]
					c.wakeHead[pi] = int32(i<<1) + 1
					missing++
				}
			}
		}
		if d2 != 0 {
			if p := d2 - 1; p >= c.head {
				if pi := p & c.robMask; !c.robIssued[pi] {
					c.wakeNext[i<<1|1] = c.wakeHead[pi]
					c.wakeHead[pi] = int32(i<<1|1) + 1
					missing++
				}
			}
		}
		c.robMissing[i] = missing
		if missing == 0 {
			ra := c.readyAtResolved(i)
			c.robReadyAt[i] = ra
			q.enqueueReady(seq, ra)
		} else {
			c.robReadyAt[i] = 0
			q.unknown++
		}
		if c.robMispred[i] && c.blockState == blockWaitDispatch {
			c.blockState = blockWaitResolve
			c.blockSeq = seq
		}
		c.ifqHead = (c.ifqHead + 1) & c.ifqMask
		c.ifqCount--
	}
}

// fetch brings instructions into the fetch queue, subject to gating,
// I-cache misses and branch redirects.
func (c *Core) fetch(gateFrac float64, act *Activity, sp *obs.StageProfiler, scale uint64) {
	// Resolve a pending branch redirect.
	if c.blockState == blockWaitResolve {
		i := c.blockSeq & c.robMask
		resolved := c.blockSeq < c.head ||
			(c.robIssued[i] && c.robDoneAt[i]+uint64(c.cfg.MispredictPenalty) <= c.cycle)
		if resolved {
			c.blockState = blockNone
		}
	}

	// Fetch gating: a deterministic duty-cycle pattern over wall cycles,
	// exactly like a hardware toggling counter. It applies regardless of
	// other stalls — which is why mild gating often hides inside cycles the
	// front end could not have used anyway.
	c.gateAcc += gateFrac
	if c.gateAcc >= 1 {
		c.gateAcc--
		act.GatedCycles++
		return
	}

	if c.cycle < c.fetchStallUntil {
		return // I-cache miss in service
	}
	if c.blockState != blockNone {
		return // waiting on a mispredicted branch
	}
	free := c.cfg.IFQSize - c.ifqCount
	if free == 0 {
		return
	}
	slots := c.cfg.FetchWidth
	if free < slots {
		slots = free
	}

	if !c.pendingValid {
		c.gen.Next(&c.pending)
		c.pendingValid = true
	}

	// One I-cache (and I-TLB) access per fetch group.
	if sp != nil {
		sp.LapN(obs.StageCPUFetch, scale)
	}
	res := c.mem.Instruction(c.pending.PC)
	if sp != nil {
		sp.LapN(obs.StageCache, scale)
	}
	act.FetchGroups++
	act.ITBAccesses++
	if !res.L1Hit {
		act.L2Accesses++
		act.ICacheMisses++
		lat := c.cfg.Caches.L1I.Latency + c.cfg.Caches.L2.Latency
		if !res.L2Hit {
			lat += c.memLatency
		}
		c.fetchStallUntil = c.cycle + uint64(lat)
		return
	}

	for i := 0; i < slots; i++ {
		if !c.pendingValid {
			c.gen.Next(&c.pending)
			c.pendingValid = true
		}
		inst := c.pending
		c.pendingValid = false

		mispredict := false
		endGroup := false
		if inst.Class == trace.Branch {
			act.BPredAccesses++
			if sp != nil {
				sp.LapN(obs.StageCPUFetch, scale)
			}
			pred := c.bp.Predict(inst.PC)
			correct := c.bp.Update(inst.PC, inst.Taken)
			if sp != nil {
				sp.LapN(obs.StageBPred, scale)
			}
			mispredict = !correct
			if mispredict {
				c.blockState = blockWaitDispatch
				endGroup = true
			} else if pred {
				// Correctly predicted taken branch still ends the fetch
				// group (no fetching past a taken branch in one cycle).
				endGroup = true
			}
		}
		tailIdx := (c.ifqHead + c.ifqCount) & c.ifqMask
		c.ifqClass[tailIdx] = inst.Class
		c.ifqDst[tailIdx] = inst.Dst
		c.ifqSrc1[tailIdx] = inst.Src1
		c.ifqSrc2[tailIdx] = inst.Src2
		c.ifqAddr[tailIdx] = inst.Addr
		c.ifqMispred[tailIdx] = mispredict
		c.ifqCount++
		act.Fetched++
		if endGroup {
			return
		}
	}
}
