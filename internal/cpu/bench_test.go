package cpu

import (
	"strings"
	"testing"

	"hybriddtm/internal/obs"
	"hybriddtm/internal/trace"
)

func benchProfile(b *testing.B, name string) trace.Profile {
	b.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		b.Fatalf("profile %s missing", name)
	}
	return p
}

// benchCoreRun measures raw pipeline throughput in DTM-chunk-sized calls
// (the shape the coupled loop produces), reporting both simulated cycles
// and committed instructions per wall second.
func benchCoreRun(b *testing.B, p trace.Profile, reference bool, gates Gates) {
	g, err := trace.NewGenerator(p)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(DefaultConfig(), g)
	if err != nil {
		b.Fatal(err)
	}
	c.UseReferencePipeline(reference)
	const chunk = 100_000
	var act Activity
	if _, err := c.RunGated(chunk, gates, &act); err != nil { // warm caches/predictor
		b.Fatal(err)
	}
	act.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunGated(chunk, gates, &act); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(act.Cycles)/sec, "simCycles/s")
		b.ReportMetric(float64(act.Committed)/sec, "insts/s")
	}
}

// BenchmarkCoreRun is the pipeline microbenchmark family: batched vs
// reference kernels across workload archetypes and gate settings, plus a
// per-stage attribution pass. The batched/reference pairs quantify what
// the kernels buy; the stages pass shows where the remaining per-cycle
// budget goes.
func BenchmarkCoreRun(b *testing.B) {
	gzip := benchProfile(b, "gzip")
	memBound := testProfile()
	memBound.SpillProb = 0.2
	memBound.ColdFootprint = 64 << 20

	b.Run("batched/gzip", func(b *testing.B) { benchCoreRun(b, gzip, false, Gates{}) })
	b.Run("reference/gzip", func(b *testing.B) { benchCoreRun(b, gzip, true, Gates{}) })
	b.Run("batched/gzip-gated", func(b *testing.B) { benchCoreRun(b, gzip, false, Gates{Fetch: 1.0 / 3}) })
	b.Run("reference/gzip-gated", func(b *testing.B) { benchCoreRun(b, gzip, true, Gates{Fetch: 1.0 / 3}) })
	b.Run("batched/mem-bound", func(b *testing.B) { benchCoreRun(b, memBound, false, Gates{}) })
	b.Run("reference/mem-bound", func(b *testing.B) { benchCoreRun(b, memBound, true, Gates{}) })
	b.Run("stages/gzip", func(b *testing.B) { benchCoreStages(b, gzip) })
}

// benchCoreStages runs the profiled kernel and reports each pipeline
// stage's attributed nanoseconds per simulated kilocycle, mirroring the
// driver-level stage-profile artifact at microbenchmark granularity.
func benchCoreStages(b *testing.B, p trace.Profile) {
	g, err := trace.NewGenerator(p)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(DefaultConfig(), g)
	if err != nil {
		b.Fatal(err)
	}
	sp := obs.NewStageProfiler(1)
	const chunk = 100_000
	var act Activity
	if _, err := c.RunGated(chunk, Gates{}, &act); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.StepTick()
		sp.Begin(obs.StageCPUCommit)
		if _, err := c.RunGatedProfiled(chunk, Gates{}, &act, sp); err != nil {
			b.Fatal(err)
		}
		sp.EndCPU()
	}
	b.StopTimer()
	kcycles := float64(b.N) * chunk / 1e3
	for _, r := range sp.Profile("bench", p.Name, "none").Stages {
		if r.Nanos == 0 || !strings.HasPrefix(r.Name, "cpu.") {
			continue
		}
		b.ReportMetric(float64(r.Nanos)/kcycles, strings.TrimPrefix(r.Name, "cpu.")+"-ns/kcyc")
	}
}
