package cpu

import (
	"testing"

	"hybriddtm/internal/obs"
)

// TestRunGatedAllocationFree pins the grow-once contract of the SoA
// pipeline state: the ROB/IFQ rings, issue-queue ready lists, wake lists,
// and MSHR array are all sized at construction (ready/pending to their
// queue capacities), so every batched entry point must run without
// touching the heap from the very first chunk. This is the test-side
// anchor of the //dtmlint:allocfree annotations on Run/RunGated/
// RunGatedProfiled — the static analyzer proves no allocation site is
// reachable, this proves the dynamic count is zero.
func TestRunGatedAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		gates Gates
	}{
		{"ungated", Gates{}},
		{"fetch-gated", Gates{Fetch: 1.0 / 3}},
		{"issue-gated", Gates{Int: 0.5, Mem: 0.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newCore(t, testProfile())
			var act Activity
			if _, err := c.RunGated(300_000, tc.gates, &act); err != nil { // steady state
				t.Fatal(err)
			}
			step := func() {
				if _, err := c.RunGated(10_000, tc.gates, &act); err != nil {
					t.Fatal(err)
				}
			}
			if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
				t.Errorf("RunGated(%s) allocates %.1f times per chunk, want 0", tc.name, allocs)
			}
		})
	}
}

// TestRunProfiledAllocationFree extends the contract to the profiled
// kernel: with injected clock/alloc hooks (pure counters), the strided-lap
// loop itself must not allocate either.
func TestRunProfiledAllocationFree(t *testing.T) {
	c := newCore(t, testProfile())
	sp := obs.NewStageProfiler(1)
	var now int64
	var reads uint64
	sp.SetHooks(
		func() int64 { now++; return now },
		func() uint64 { reads++; return reads },
	)
	var act Activity
	if _, err := c.RunGated(300_000, Gates{}, &act); err != nil {
		t.Fatal(err)
	}
	step := func() {
		sp.StepTick()
		sp.Begin(obs.StageCPUCommit)
		if _, err := c.RunGatedProfiled(10_000, Gates{}, &act, sp); err != nil {
			t.Fatal(err)
		}
		sp.EndCPU()
	}
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Errorf("RunGatedProfiled allocates %.1f times per chunk, want 0", allocs)
	}
}
