package cpu

import (
	"testing"

	"hybriddtm/internal/trace"
)

// FuzzCoreRun throws randomized workload mixes and gate schedules at the
// pipeline and checks (a) structural invariants that must hold for any
// input, and (b) that the batched kernels remain counter-for-counter
// identical to the cycle-at-a-time reference loop. The seed corpus spans
// the benchmark suite's instruction mixes plus adversarial corners
// (all-FP, branch-hostile, memory-thrashing).
func FuzzCoreRun(f *testing.F) {
	// Corpus rows: seed, mix percentages, dep-distance/indep knobs,
	// branch-pattern knob, spill knob, gate bytes (fetch, int, fp, mem).
	add := func(seed uint64, load, store, branch, fpadd, fpmul, intmul, dep, indep, pat, spill, gF, gI, gFP, gM byte) {
		f.Add(seed, load, store, branch, fpadd, fpmul, intmul, dep, indep, pat, spill, gF, gI, gFP, gM)
	}
	add(7, 24, 10, 12, 5, 4, 1, 35, 25, 92, 1, 0, 0, 0, 0)    // cputest profile, ungated
	add(1, 22, 9, 8, 16, 12, 1, 40, 20, 90, 2, 33, 0, 0, 0)   // FP-ish suite mix, 1/3 fetch gate
	add(2, 26, 11, 15, 0, 0, 1, 20, 10, 95, 0, 66, 0, 0, 0)   // int/branchy, severe gate
	add(3, 29, 14, 12, 0, 0, 1, 50, 30, 0, 20, 0, 85, 0, 50)  // hostile branches + issue gates
	add(4, 24, 8, 7, 22, 16, 0, 60, 40, 99, 5, 5, 0, 85, 0)   // FP-heavy, mild fetch + FP gate
	add(5, 40, 20, 0, 0, 0, 0, 15, 0, 50, 30, 50, 50, 50, 50) // load/store storm, everything gated
	f.Fuzz(func(t *testing.T, seed uint64, load, store, branch, fpadd, fpmul, intmul, dep, indep, pat, spill, gF, gI, gFP, gM byte) {
		// Map raw bytes onto a valid profile: mix percentages normalized to
		// leave at least a 20% IntALU remainder, knobs clamped into their
		// validated ranges.
		mv := [6]float64{float64(load), float64(store), float64(branch), float64(fpadd), float64(fpmul), float64(intmul)}
		tot := 0.0
		for _, v := range mv {
			tot += v
		}
		denom := tot * 1.25
		if denom < 100 {
			denom = 100
		}
		p := trace.Profile{
			Name: "fuzz", Seed: seed,
			Mix: trace.Mix{
				Load: mv[0] / denom, Store: mv[1] / denom, Branch: mv[2] / denom,
				FPAdd: mv[3] / denom, FPMul: mv[4] / denom, IntMul: mv[5] / denom,
			},
			MeanDepDist:   1.5 + float64(dep%100)/10,
			IndepFrac:     float64(indep%50) / 100,
			PatternedFrac: float64(pat%101) / 100,
			PatternedBias: 0.97,
			BranchSites:   128,
			CodeFootprint: 48 << 10,
			DataResident:  40 << 10,
			SpillProb:     float64(spill%30) / 100,
			ColdFootprint: 2 << 20,
		}
		if err := p.Validate(); err != nil {
			t.Skip(err)
		}
		gate := func(b byte) float64 { return float64(b%90) / 100 }
		sched := []chunk{
			{n: 8_000},
			{n: 8_000, gates: Gates{Fetch: gate(gF)}},
			{n: 8_000, gates: Gates{Fetch: gate(gF), Int: gate(gI), FP: gate(gFP), Mem: gate(gM)}},
			{n: 8_000, gates: Gates{Int: gate(gI), Mem: gate(gM)}},
		}

		ref, cRef := runSchedule(t, p, true, sched)
		bat, cBat := runSchedule(t, p, false, sched)

		var want uint64
		var cum Activity
		for i, ch := range sched {
			want += ch.n
			// Differential: batched == reference, chunk by chunk.
			if ref[i] != bat[i] {
				t.Fatalf("chunk %d diverged\nref: %+v\nbat: %+v", i, ref[i], bat[i])
			}
			a := bat[i]
			if a.Cycles != ch.n {
				t.Errorf("chunk %d: %d cycles elapsed, want %d", i, a.Cycles, ch.n)
			}
			if a.GatedCycles > a.Cycles {
				t.Errorf("chunk %d: gated %d > cycles %d", i, a.GatedCycles, a.Cycles)
			}
			// Structural invariants hold cumulatively (work dispatched in an
			// earlier chunk may commit in a later one, so per-chunk deltas
			// can legitimately invert).
			cum.Add(&a)
			disp := cum.IntDispatched + cum.FPDispatched + cum.MemDispatched
			if cum.Committed > disp {
				t.Errorf("after chunk %d: committed %d > dispatched %d", i, cum.Committed, disp)
			}
			if disp > cum.Fetched {
				t.Errorf("after chunk %d: dispatched %d > fetched %d", i, disp, cum.Fetched)
			}
		}
		for _, c := range []*Core{cRef, cBat} {
			if c.Cycle() != want {
				t.Errorf("cycle counter %d not monotonic sum of chunks %d", c.Cycle(), want)
			}
			if bound := uint64(c.Config().ROBSize + c.Config().IFQSize); c.InFlight() > bound {
				t.Errorf("in-flight %d exceeds ROB+IFQ %d", c.InFlight(), bound)
			}
		}
	})
}
