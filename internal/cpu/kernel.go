package cpu

// This file holds the batched pipeline kernels: the hot paths behind
// Run/RunGated/RunGatedProfiled. They advance the machine over runs of
// cycles between DTM-visible boundaries with the per-cycle bookkeeping the
// reference loop pays — gate-fraction accumulator math, profiler checks,
// fruitless issue-queue walks — hoisted out of the inner loop or elided
// where provably a no-op. Every elision below is bit-exact, not
// approximate:
//
//   - A gateTick with fraction 0 adds 0.0 to its accumulator and, since the
//     accumulator invariant is acc ∈ [0,1), never gates — so zero-fraction
//     domains skip the accumulator math entirely.
//   - An issue-queue walk is skipped while cycle < minReady, the queue's
//     ready watermark: a lower bound on the earliest cycle any queued
//     entry can issue. Walks recompute it exactly; dispatch and producer
//     wakeups only ever lower it; ready-but-unselected backlogs (width or
//     MSHR limits) pin it at or below the current cycle. A skipped walk
//     would select nothing and change nothing.
//   - Idle fast-forward jumps over cycles in which provably no stage can
//     act (commit blocked on an in-flight completion, all waiters settled,
//     dispatch starved or structurally blocked, fetch stalled/blocked).
//     Fetch-gating accumulator ticks across skipped cycles are replayed
//     with the identical float additions.
//
// The equivalence harness (equivalence_test.go, core's
// TestScalarBatchedEquivalence) and FuzzCoreRun diff these kernels against
// the cycle-at-a-time reference loop counter-for-counter.

import (
	"hybriddtm/internal/obs"
	"hybriddtm/internal/stats"
)

// profileStride is the mini-batch length of the profiled loop: one
// fully-staged, per-stage-lapped cycle opens each mini-batch and its stage
// times are extrapolated over the batch; the rest run through the batched
// kernels. Laps therefore sit at batch boundaries — ~2 clock reads per
// profileStride cycles — instead of 8 reads per cycle, which is what keeps
// profiler-on overhead inside the envelope asserted by
// TestStageProfilerOverhead.
const profileStride = 64

// runBatched picks the kernel for the gate configuration. Issue-domain
// gating (local toggling) is a research path measured for the paper's §2
// comparison only; it takes the reference loop, which ticks every
// accumulator each cycle.
func (c *Core) runBatched(n uint64, gates Gates, act *Activity) {
	switch {
	case !issueGatesZero(gates):
		c.runScalar(n, gates, act, nil)
	case stats.SameFloat(gates.Fetch, 0):
		c.runUngated(n, act)
	default:
		c.runFetchGated(n, gates.Fetch, act)
	}
}

// runUngated is the kernel for the common case: no gating anywhere.
func (c *Core) runUngated(n uint64, act *Activity) {
	end := c.cycle + n
	for c.cycle < end {
		c.cycle++
		h0, t0, i0, f0 := c.head, c.tail, c.issues, act.FetchGroups
		c.commit(act)
		if c.cycle >= c.intQ.minReady {
			c.issueInt(act)
		}
		if c.cycle >= c.fpQ.minReady {
			c.issueFP(act)
		}
		if c.cycle >= c.memQ.minReady {
			c.issueMem(act, nil, 1)
		}
		if c.ifqCount > 0 {
			c.dispatch(act)
		}
		c.fetch(0, act, nil, 1)
		if c.head == h0 && c.tail == t0 && c.issues == i0 && act.FetchGroups == f0 {
			c.idleSkip(end, false, 0, act)
		}
	}
}

// runFetchGated is the kernel for active fetch gating with idle issue
// domains — the configuration every fetch-gating DTM policy produces. The
// fetch-gate accumulator must advance every cycle (its duty pattern is
// defined over wall cycles), so idle fast-forward replays the accumulator
// additions across skipped cycles.
func (c *Core) runFetchGated(n uint64, frac float64, act *Activity) {
	end := c.cycle + n
	for c.cycle < end {
		c.cycle++
		h0, t0, i0, f0 := c.head, c.tail, c.issues, act.FetchGroups
		c.commit(act)
		if c.cycle >= c.intQ.minReady {
			c.issueInt(act)
		}
		if c.cycle >= c.fpQ.minReady {
			c.issueFP(act)
		}
		if c.cycle >= c.memQ.minReady {
			c.issueMem(act, nil, 1)
		}
		if c.ifqCount > 0 {
			c.dispatch(act)
		}
		c.fetch(frac, act, nil, 1)
		if c.head == h0 && c.tail == t0 && c.issues == i0 && act.FetchGroups == f0 {
			c.idleSkip(end, true, frac, act)
		}
	}
}

// idleSkip advances the cycle counter over a provably-dead stretch. The
// caller has just executed a cycle in which no stage acted (no commit, no
// issue, no dispatch, no fetch group). Since nothing changed, each stage's
// earliest possible next action is computable now:
//
//   - commit: the completion time of the (issued) window head; an
//     un-issued head wakes only via an issue, bounded below.
//   - issue: each queue's minReady watermark. An entry with unknown
//     readiness waits on an un-issued producer, and the oldest un-issued
//     instruction always has a known ready-at (all its producers have
//     issued, so the wakeup computed it), so the minimum over the
//     watermarks is finite whenever any queue is non-empty. A queue held
//     at the MSHR structural block has minReady ≤ cycle, which vetoes the
//     skip below.
//   - dispatch: starved (woken by fetch) or blocked on the window/an issue
//     queue (woken by commit/issue, both bounded above — and both run
//     before dispatch within a cycle, so landing exactly on the wake cycle
//     loses nothing).
//   - fetch: the I-cache stall expiry, or the mispredict resolution time
//     when the blocking branch has issued; otherwise woken by
//     issue/dispatch, bounded above.
//
// The jump lands on min(candidates); intervening cycles are dead for every
// stage. Landing early (a candidate that wakes only one stage) just means
// one more dead-cycle evaluation and another skip. With fetch gating
// active, a cycle is dead only if fetch was also structurally unable to
// act (gating alone proves nothing about the next cycle), and the
// accumulator ticks for skipped cycles are replayed exactly.
func (c *Core) idleSkip(end uint64, gated bool, frac float64, act *Activity) {
	if !(c.cycle < c.fetchStallUntil || c.blockState != blockNone || c.ifqCount >= c.cfg.IFQSize) {
		// Fetch could act next cycle (this one it was gated away or the
		// stall expired mid-cycle); no stretch to skip.
		return
	}
	t := uint64(unknownReady)
	if c.head != c.tail {
		if i := c.head & c.robMask; c.robIssued[i] {
			t = c.robDoneAt[i]
		}
	}
	if c.intQ.minReady < t {
		t = c.intQ.minReady
	}
	if c.fpQ.minReady < t {
		t = c.fpQ.minReady
	}
	if c.memQ.minReady < t {
		t = c.memQ.minReady
	}
	if c.cycle < c.fetchStallUntil {
		if c.fetchStallUntil < t {
			t = c.fetchStallUntil
		}
	} else if c.blockState == blockWaitResolve {
		if i := c.blockSeq & c.robMask; c.blockSeq >= c.head && c.robIssued[i] {
			if r := c.robDoneAt[i] + uint64(c.cfg.MispredictPenalty); r < t {
				t = r
			}
		}
	}
	if t == unknownReady || t <= c.cycle+1 {
		return
	}
	nc := t - 1
	if nc > end {
		nc = end
	}
	if gated {
		// Replay the per-cycle fetch-gate accumulator ticks the skipped
		// cycles would have performed — the identical repeated additions,
		// so the duty pattern stays bit-exact.
		for k := c.cycle; k < nc; k++ {
			c.gateAcc += frac
			if c.gateAcc >= 1 {
				c.gateAcc--
				act.GatedCycles++
			}
		}
	}
	c.cycle = nc
}

// runProfiled is the batched loop with per-stage attribution: one
// fully-staged cycle at each mini-batch boundary carries the laps (scaled
// ×batch via LapN so stage fractions stay representative), and the
// remaining cycles run through the batched kernels.
func (c *Core) runProfiled(n uint64, gates Gates, act *Activity, sp *obs.StageProfiler) {
	for n > 0 {
		batch := uint64(profileStride)
		if batch > n {
			batch = n
		}
		c.profiledCycle(gates, act, sp, batch)
		if rest := batch - 1; rest > 0 {
			c.runBatched(rest, gates, act)
		}
		n -= batch
	}
}

// profiledCycle runs one cycle through the reference stage sequence with
// laps attributing each stage, extrapolated over scale cycles.
func (c *Core) profiledCycle(gates Gates, act *Activity, sp *obs.StageProfiler, scale uint64) {
	c.cycle++
	if sp != nil {
		sp.Mark()
	}
	c.commit(act)
	if sp != nil {
		sp.LapN(obs.StageCPUCommit, scale)
	}
	c.issue(gates, act, sp, scale)
	c.dispatch(act)
	if sp != nil {
		sp.LapN(obs.StageCPUDispatch, scale)
	}
	c.fetch(gates.Fetch, act, sp, scale)
	if sp != nil {
		sp.LapN(obs.StageCPUFetch, scale)
	}
}
