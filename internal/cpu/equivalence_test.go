package cpu

import (
	"testing"

	"hybriddtm/internal/trace"
)

// chunk is one DTM-visible run segment: the coupled loop calls RunGated in
// thermal-step-sized chunks with whatever gates the policy chose, so the
// equivalence harness replays realistic chunk schedules rather than one
// monolithic run.
type chunk struct {
	n     uint64
	gates Gates
	ratio float64 // SetFrequencyRatio before the chunk; 0 = leave alone
}

// runSchedule drives a core through the schedule, returning the per-chunk
// activity deltas plus the core for terminal-state inspection.
func runSchedule(t *testing.T, p trace.Profile, reference bool, sched []chunk) ([]Activity, *Core) {
	t.Helper()
	g, err := trace.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	c.UseReferencePipeline(reference)
	acts := make([]Activity, len(sched))
	for i, ch := range sched {
		if ch.ratio != 0 {
			if err := c.SetFrequencyRatio(ch.ratio); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.RunGated(ch.n, ch.gates, &acts[i]); err != nil {
			t.Fatal(err)
		}
	}
	return acts, c
}

// diffSchedules runs the same profile and schedule through the reference
// (cycle-at-a-time) and batched pipelines and requires counter-for-counter
// identical behavior: every Activity field of every chunk, plus the
// terminal cycle/commit/in-flight state.
func diffSchedules(t *testing.T, name string, p trace.Profile, sched []chunk) {
	t.Helper()
	ref, cRef := runSchedule(t, p, true, sched)
	bat, cBat := runSchedule(t, p, false, sched)
	for i := range sched {
		if ref[i] != bat[i] {
			t.Errorf("%s chunk %d (gates %+v): batched diverged from reference\nref: %+v\nbat: %+v",
				name, i, sched[i].gates, ref[i], bat[i])
		}
	}
	if cRef.Cycle() != cBat.Cycle() || cRef.Committed() != cBat.Committed() || cRef.InFlight() != cBat.InFlight() {
		t.Errorf("%s terminal state diverged: cycle %d/%d committed %d/%d inflight %d/%d",
			name, cRef.Cycle(), cBat.Cycle(), cRef.Committed(), cBat.Committed(), cRef.InFlight(), cBat.InFlight())
	}
}

// TestScalarBatchedEquivalence is the golden equivalence harness for the
// batched kernels: across workload archetypes (predictable, hostile
// branches, memory-bound, FP-heavy) and gate schedules spanning every
// kernel path (ungated, fetch-gated at the paper's duty levels, issue
// gating, DVS frequency changes mid-run), the batched pipeline must match
// the reference loop exactly. Any bit of drift in any counter fails.
func TestScalarBatchedEquivalence(t *testing.T) {
	steady := func(n int, g Gates) []chunk {
		s := make([]chunk, n)
		for i := range s {
			s[i] = chunk{n: 10_000, gates: g}
		}
		return s
	}

	memBound := testProfile()
	memBound.SpillProb = 0.2
	memBound.ColdFootprint = 64 << 20

	hostile := testProfile()
	hostile.PatternedFrac = 0

	fpHeavy := testProfile()
	fpHeavy.Mix.FPAdd, fpHeavy.Mix.FPMul = 0.25, 0.20

	// A policy-like schedule: idle, then ramping fetch gates, a DVS drop,
	// severe gating, recovery — odd chunk sizes to exercise batch tails.
	policyLike := []chunk{
		{n: 10_000}, {n: 9_973},
		{n: 10_000, gates: Gates{Fetch: 0.05}},
		{n: 10_000, gates: Gates{Fetch: 1.0 / 3}},
		{n: 7_001, gates: Gates{Fetch: 2.0 / 3}, ratio: 0.5},
		{n: 10_000, gates: Gates{Fetch: 2.0 / 3}},
		{n: 10_000, gates: Gates{Fetch: 0.05}, ratio: 1.0},
		{n: 13_999},
	}

	cases := []struct {
		name  string
		prof  trace.Profile
		sched []chunk
	}{
		{"ungated", testProfile(), steady(6, Gates{})},
		{"fetch-mild", testProfile(), steady(6, Gates{Fetch: 0.05})},
		{"fetch-severe", testProfile(), steady(6, Gates{Fetch: 2.0 / 3})},
		{"issue-gates", testProfile(), steady(6, Gates{Int: 0.85, Mem: 0.5})},
		{"mem-bound", memBound, steady(6, Gates{})},
		{"mem-bound-gated", memBound, steady(6, Gates{Fetch: 0.5})},
		{"hostile-branches", hostile, steady(6, Gates{})},
		{"fp-heavy", fpHeavy, steady(6, Gates{})},
		{"policy-like", testProfile(), policyLike},
		{"policy-like-mem", memBound, policyLike},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffSchedules(t, tc.name, tc.prof, tc.sched)
		})
	}
}

// TestBatchedLongRunEquivalence covers a long uninterrupted run, where idle
// fast-forward and the minReady skip see their deepest stretches.
func TestBatchedLongRunEquivalence(t *testing.T) {
	diffSchedules(t, "long", testProfile(), []chunk{{n: 1_000_000}})
	p := testProfile()
	p.SpillProb = 0.3
	p.ColdFootprint = 64 << 20
	diffSchedules(t, "long-memory", p, []chunk{{n: 1_000_000, gates: Gates{Fetch: 0.5}}})
}
