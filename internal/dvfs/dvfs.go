// Package dvfs models voltage/frequency scaling for a given process
// technology. The frequency-versus-voltage relation uses the alpha-power
// delay model (Sakurai–Newton), standing in for the paper's Cadence/BSIM
// ring-oscillator characterization (§4.1): gate delay ∝ V / (V − Vt)^α, so
//
//	f(V) = fNom · (V−Vt)^α/V · VNom/(VNom−Vt)^α
//
// With the default parameters, 85 % of nominal voltage runs at ≈87 % of
// nominal frequency, giving DVS its near-cubic power reduction relative to
// the frequency loss.
package dvfs

import (
	"fmt"
	"math"
)

// Technology describes the process corner the chip is built in. Defaults
// follow the paper: 0.13 µm, Vdd 1.3 V, 3 GHz.
type Technology struct {
	VNominal   float64 // nominal supply, V
	FNominal   float64 // clock at nominal supply, Hz
	VThreshold float64 // device threshold, V
	Alpha      float64 // velocity-saturation exponent of the alpha-power model
}

// Default130nm returns the paper's technology point.
func Default130nm() Technology {
	return Technology{
		VNominal:   1.3,
		FNominal:   3e9,
		VThreshold: 0.35,
		Alpha:      1.3,
	}
}

// Validate checks internal consistency.
func (t Technology) Validate() error {
	if !(t.VNominal > 0) || !(t.FNominal > 0) || !(t.Alpha > 0) {
		return fmt.Errorf("dvfs: non-positive technology parameter: %+v", t)
	}
	if !(t.VThreshold >= 0) || t.VThreshold >= t.VNominal {
		return fmt.Errorf("dvfs: threshold %v must be in [0, VNominal=%v)", t.VThreshold, t.VNominal)
	}
	return nil
}

// Frequency returns the maximum stable clock at supply v. v must exceed the
// threshold voltage (below it the circuit does not switch); the result at
// VNominal is FNominal.
func (t Technology) Frequency(v float64) float64 {
	if v <= t.VThreshold {
		return 0
	}
	num := math.Pow(v-t.VThreshold, t.Alpha) / v
	den := math.Pow(t.VNominal-t.VThreshold, t.Alpha) / t.VNominal
	return t.FNominal * num / den
}

// DynamicScale returns the dynamic-power scaling factor at supply v relative
// to nominal: (V/VNom)² · f(V)/fNom. This is the "approximately cubic"
// reduction in power density with respect to the reduction in frequency
// that motivates DVS for severe thermal stress (§1).
func (t Technology) DynamicScale(v float64) float64 {
	r := v / t.VNominal
	return r * r * t.Frequency(v) / t.FNominal
}

// LeakageVoltageScale returns the supply-voltage dependence of leakage
// power, approximately linear in V over the DVS range.
func (t Technology) LeakageVoltageScale(v float64) float64 {
	return v / t.VNominal
}

// OperatingPoint is one voltage/frequency setting.
type OperatingPoint struct {
	V float64 // supply, V
	F float64 // clock, Hz
}

// Ladder is an ordered set of operating points, index 0 the fastest
// (nominal) setting, the last index the lowest-voltage setting. The paper
// evaluates ladders with continuous, ten, five, three and two steps and
// finds binary DVS sufficient for DTM (§4.1).
type Ladder struct {
	tech   Technology
	points []OperatingPoint
}

// NewLadder builds a ladder of n operating points with voltages evenly
// spaced from VNominal down to lowFrac·VNominal. n must be ≥ 2; lowFrac in
// (VThreshold/VNominal, 1).
func NewLadder(t Technology, n int, lowFrac float64) (*Ladder, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("dvfs: ladder needs at least 2 points, got %d", n)
	}
	vLow := lowFrac * t.VNominal
	if !(vLow > t.VThreshold) || lowFrac >= 1 {
		return nil, fmt.Errorf("dvfs: low fraction %v out of range (%v, 1)",
			lowFrac, t.VThreshold/t.VNominal)
	}
	pts := make([]OperatingPoint, n)
	for i := 0; i < n; i++ {
		v := t.VNominal + (vLow-t.VNominal)*float64(i)/float64(n-1)
		pts[i] = OperatingPoint{V: v, F: t.Frequency(v)}
	}
	return &Ladder{tech: t, points: pts}, nil
}

// Binary returns the two-point ladder {nominal, lowFrac·nominal}: the
// scheme the paper recommends (comparator-actuated, minimal test overhead).
func Binary(t Technology, lowFrac float64) (*Ladder, error) {
	return NewLadder(t, 2, lowFrac)
}

// ContinuousSteps is the resolution used to approximate the paper's
// "continuous" DVS: fine enough that quantization is far below the paper's
// observed 0.4 % step-size sensitivity.
const ContinuousSteps = 64

// Continuous approximates continuously variable DVS with a dense ladder.
func Continuous(t Technology, lowFrac float64) (*Ladder, error) {
	return NewLadder(t, ContinuousSteps, lowFrac)
}

// Technology returns the technology the ladder was built for.
func (l *Ladder) Technology() Technology { return l.tech }

// NumPoints returns the number of operating points.
func (l *Ladder) NumPoints() int { return len(l.points) }

// Point returns operating point i (0 = fastest).
func (l *Ladder) Point(i int) OperatingPoint { return l.points[i] }

// Nominal returns the fastest operating point.
func (l *Ladder) Nominal() OperatingPoint { return l.points[0] }

// Lowest returns the lowest-voltage operating point.
func (l *Ladder) Lowest() OperatingPoint { return l.points[len(l.points)-1] }

// QuantizeFrequency returns the index of the fastest operating point whose
// frequency does not exceed fTarget. If even the lowest point is faster
// than fTarget, the lowest point's index is returned; if fTarget is at or
// above nominal, 0 is returned. This is how a feedback controller's
// continuous output is mapped onto the discrete ladder, conservatively (the
// paper notes DTM must round toward the safer setting).
func (l *Ladder) QuantizeFrequency(fTarget float64) int {
	// The relative tolerance absorbs float rounding from upstream filters
	// (an exponential filter converging to nominal can stall a few ulps
	// short); it is far below any real ladder spacing.
	const tol = 1 + 1e-9
	for i, p := range l.points {
		if p.F <= fTarget*tol {
			return i
		}
	}
	return len(l.points) - 1
}
