package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTechnologyValid(t *testing.T) {
	tech := Default130nm()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	if tech.VNominal != 1.3 || tech.FNominal != 3e9 {
		t.Errorf("default tech = %+v, want 1.3V / 3GHz", tech)
	}
}

func TestValidateRejectsBadTech(t *testing.T) {
	cases := []Technology{
		{VNominal: 0, FNominal: 3e9, VThreshold: 0.3, Alpha: 1.3},
		{VNominal: 1.3, FNominal: 0, VThreshold: 0.3, Alpha: 1.3},
		{VNominal: 1.3, FNominal: 3e9, VThreshold: 1.4, Alpha: 1.3}, // Vt >= Vdd
		{VNominal: 1.3, FNominal: 3e9, VThreshold: -0.1, Alpha: 1.3},
		{VNominal: 1.3, FNominal: 3e9, VThreshold: 0.3, Alpha: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestFrequencyAtNominal(t *testing.T) {
	tech := Default130nm()
	if got := tech.Frequency(tech.VNominal); math.Abs(got-tech.FNominal) > 1 {
		t.Errorf("f(VNom) = %v, want %v", got, tech.FNominal)
	}
}

func TestFrequencyMonotone(t *testing.T) {
	tech := Default130nm()
	f := func(a, b float64) bool {
		// Map to (Vt, VNom] range.
		lo := tech.VThreshold + 0.01
		va := lo + math.Mod(math.Abs(a), tech.VNominal-lo)
		vb := lo + math.Mod(math.Abs(b), tech.VNominal-lo)
		if va > vb {
			va, vb = vb, va
		}
		return tech.Frequency(va) <= tech.Frequency(vb)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFrequencyBelowThresholdZero(t *testing.T) {
	tech := Default130nm()
	if got := tech.Frequency(tech.VThreshold); got != 0 {
		t.Errorf("f(Vt) = %v, want 0", got)
	}
	if got := tech.Frequency(0.1); got != 0 {
		t.Errorf("f(0.1) = %v, want 0", got)
	}
}

func TestCalibration85Percent(t *testing.T) {
	// The paper's ring-oscillator characterization makes 85% voltage run at
	// a high fraction of nominal frequency; the alpha-power substitute must
	// land in the 84–90% frequency band so DVS keeps its cubic advantage.
	tech := Default130nm()
	v := 0.85 * tech.VNominal
	fr := tech.Frequency(v) / tech.FNominal
	if fr < 0.84 || fr > 0.90 {
		t.Errorf("f(0.85·VNom)/fNom = %v, want in [0.84, 0.90]", fr)
	}
	// Dynamic power at that point must be well below the frequency ratio
	// (the cubic advantage).
	ps := tech.DynamicScale(v)
	if ps >= fr {
		t.Errorf("power scale %v not below frequency scale %v", ps, fr)
	}
	if ps < 0.55 || ps > 0.70 {
		t.Errorf("DynamicScale(0.85·VNom) = %v, want in [0.55, 0.70]", ps)
	}
}

func TestDynamicScaleCubicShape(t *testing.T) {
	// Power reduction must outpace frequency reduction everywhere below
	// nominal: d(power)/d(freq) slope > 1 in relative terms.
	tech := Default130nm()
	for _, frac := range []float64{0.95, 0.9, 0.85, 0.8, 0.75} {
		v := frac * tech.VNominal
		fRel := tech.Frequency(v) / tech.FNominal
		pRel := tech.DynamicScale(v)
		// Relative power loss must exceed relative frequency loss by at
		// least ~2x (cubic-ish behaviour).
		if (1 - pRel) < 2*(1-fRel) {
			t.Errorf("at %v·VNom: power loss %v < 2× frequency loss %v", frac, 1-pRel, 1-fRel)
		}
	}
}

func TestLeakageVoltageScale(t *testing.T) {
	tech := Default130nm()
	if got := tech.LeakageVoltageScale(tech.VNominal); math.Abs(got-1) > 1e-12 {
		t.Errorf("leak scale at nominal = %v, want 1", got)
	}
	if got := tech.LeakageVoltageScale(0.65); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("leak scale at half = %v, want 0.5", got)
	}
}

func TestNewLadder(t *testing.T) {
	tech := Default130nm()
	l, err := NewLadder(tech, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPoints() != 5 {
		t.Fatalf("NumPoints = %d, want 5", l.NumPoints())
	}
	if math.Abs(l.Nominal().V-tech.VNominal) > 1e-12 {
		t.Errorf("Nominal V = %v", l.Nominal().V)
	}
	if math.Abs(l.Lowest().V-0.85*tech.VNominal) > 1e-12 {
		t.Errorf("Lowest V = %v, want %v", l.Lowest().V, 0.85*tech.VNominal)
	}
	// Monotone decreasing V and F along the ladder.
	for i := 1; i < l.NumPoints(); i++ {
		if l.Point(i).V >= l.Point(i-1).V {
			t.Errorf("ladder voltage not decreasing at %d", i)
		}
		if l.Point(i).F >= l.Point(i-1).F {
			t.Errorf("ladder frequency not decreasing at %d", i)
		}
	}
}

func TestLadderValidation(t *testing.T) {
	tech := Default130nm()
	if _, err := NewLadder(tech, 1, 0.85); err == nil {
		t.Error("accepted 1-point ladder")
	}
	if _, err := NewLadder(tech, 2, 1.0); err == nil {
		t.Error("accepted lowFrac = 1")
	}
	if _, err := NewLadder(tech, 2, 0.1); err == nil {
		t.Error("accepted lowFrac below threshold")
	}
	bad := tech
	bad.Alpha = -1
	if _, err := NewLadder(bad, 2, 0.85); err == nil {
		t.Error("accepted invalid technology")
	}
}

func TestBinaryLadder(t *testing.T) {
	l, err := Binary(Default130nm(), 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPoints() != 2 {
		t.Errorf("Binary ladder has %d points", l.NumPoints())
	}
}

func TestContinuousLadder(t *testing.T) {
	l, err := Continuous(Default130nm(), 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPoints() != ContinuousSteps {
		t.Errorf("Continuous ladder has %d points, want %d", l.NumPoints(), ContinuousSteps)
	}
}

func TestQuantizeFrequency(t *testing.T) {
	tech := Default130nm()
	l, err := NewLadder(tech, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// At or above nominal: index 0.
	if got := l.QuantizeFrequency(tech.FNominal * 1.1); got != 0 {
		t.Errorf("Quantize(1.1·fNom) = %d, want 0", got)
	}
	// Below the lowest: lowest index (conservative clamp).
	if got := l.QuantizeFrequency(0); got != l.NumPoints()-1 {
		t.Errorf("Quantize(0) = %d, want %d", got, l.NumPoints()-1)
	}
	// Exactly at an intermediate point: that point.
	for i := 0; i < l.NumPoints(); i++ {
		if got := l.QuantizeFrequency(l.Point(i).F); got != i {
			t.Errorf("Quantize(F[%d]) = %d, want %d", i, got, i)
		}
	}
	// Strictly between points i and i+1: the slower point (conservative).
	mid := (l.Point(1).F + l.Point(2).F) / 2
	if got := l.QuantizeFrequency(mid); got != 2 {
		t.Errorf("Quantize(midpoint 1-2) = %d, want 2", got)
	}
}

func TestQuantizeIsConservative(t *testing.T) {
	// Property: the selected point never runs faster than the target unless
	// the target exceeds nominal.
	l, err := NewLadder(Default130nm(), 10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		target := math.Mod(math.Abs(x), l.Nominal().F)
		if target < l.Lowest().F {
			return l.QuantizeFrequency(target) == l.NumPoints()-1
		}
		i := l.QuantizeFrequency(target)
		return l.Point(i).F <= target+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
