// End-to-end trace schema test: build dtmsim, trace a run per policy, and
// parse the JSONL/CSV output. This is the executable definition of the
// trace-file contract (obs.SchemaVersion) as seen from outside the
// process — what CI's observability job and any downstream analysis
// script rely on.
package hybriddtm

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"hybriddtm/internal/obs"
)

// TestTraceCLI runs dtmsim -trace-out for each paper policy and checks
// the stream: valid JSON per line, begin/end framing with the current
// schema version, and thermal-step, sensor, and actuation events present.
func TestTraceCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmsim and runs four traced simulations")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, exeName("dtmsim"))
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dtmsim").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	for _, policy := range []string{"fg", "dvs", "pi-hyb", "hyb"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			path := filepath.Join(dir, policy+".jsonl")
			cmd := exec.Command(bin, "-bench", "gzip", "-policy", policy,
				"-insts", "200000", "-trace-out", path)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("dtmsim: %v\n%s", err, out)
			}
			checkJSONLTrace(t, path, policy)
		})
	}

	// CSV variant: extension selects the sink; the file must parse as CSV
	// with one width for every row.
	t.Run("csv", func(t *testing.T) {
		path := filepath.Join(dir, "hyb.csv")
		cmd := exec.Command(bin, "-bench", "gzip", "-policy", "hyb",
			"-insts", "200000", "-trace-out", path)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("dtmsim: %v\n%s", err, out)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := csv.NewReader(f).ReadAll()
		if err != nil {
			t.Fatalf("trace is not valid CSV: %v", err)
		}
		if len(rows) < 10 {
			t.Fatalf("suspiciously short CSV trace: %d rows", len(rows))
		}
	})
}

// checkJSONLTrace parses one trace file and asserts the schema contract.
func checkJSONLTrace(t *testing.T, path, policy string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	kinds := map[string]int{}
	var first, last map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var rec map[string]any
		if err := json.Unmarshal(bytes.TrimSpace(sc.Bytes()), &rec); err != nil {
			t.Fatalf("%s line %d: invalid JSON: %v", path, line, err)
		}
		ev, _ := rec["ev"].(string)
		if ev == "" {
			t.Fatalf("%s line %d: record without \"ev\" discriminator", path, line)
		}
		kinds[ev]++
		if first == nil {
			first = rec
		}
		last = rec
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if first["ev"] != "begin" || first["schema"] != float64(obs.SchemaVersion) {
		t.Errorf("header = %v, want ev=begin schema=%d", first, obs.SchemaVersion)
	}
	if first["benchmark"] != "gzip" {
		t.Errorf("header benchmark = %v", first["benchmark"])
	}
	if last["ev"] != "end" {
		t.Errorf("final record = %v, want ev=end", last)
	}
	wantEvents := float64(line - 2) // all records minus header and footer
	if last["events"] != wantEvents {
		t.Errorf("footer count %v != %v event records", last["events"], wantEvents)
	}
	// The acceptance contract: every policy's trace carries thermal steps,
	// sensor samples, and applied actuations.
	for _, ev := range []string{"step", "sensor", "decision", "actuation"} {
		if kinds[ev] == 0 {
			t.Errorf("policy %s: no %q events in trace (kinds: %v)", policy, ev, kinds)
		}
	}
}
