// Package hybriddtm's root benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation (reported as custom metrics), the
// ablation benches for the design choices called out in DESIGN.md, and
// microbenchmarks of the substrates. Figure benches run the real experiment
// pipeline at a reduced instruction budget — the paper-scale runs are
// produced by cmd/experiments; these exist so `go test -bench` regenerates
// every row/series shape quickly and reproducibly.
//
// Run a single figure with e.g.
//
//	go test -bench=Fig4a -benchtime=1x .
package hybriddtm

import (
	"context"
	"fmt"
	"io"
	"testing"

	"hybriddtm/internal/core"
	"hybriddtm/internal/cpu"
	"hybriddtm/internal/dtm"
	"hybriddtm/internal/dvfs"
	"hybriddtm/internal/experiments"
	"hybriddtm/internal/floorplan"
	"hybriddtm/internal/hotspot"
	"hybriddtm/internal/obs"
	"hybriddtm/internal/power"
	"hybriddtm/internal/stats"
	"hybriddtm/internal/trace"
)

// benchInstructions keeps full-suite sweeps tractable on one core; shapes
// are stable at this scale even though absolute slowdowns carry a little
// more noise than the cmd/experiments defaults.
const benchInstructions = 1_500_000

func benchOptions() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Instructions = benchInstructions
	cfg := core.DefaultConfig()
	cfg.WarmupCycles = 1_000_000
	cfg.InitCycles = 500_000
	cfg.SettleInstructions = 1_500_000
	opts.Config = cfg
	return opts
}

func newRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r, err := experiments.NewRunner(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkCharacterise regenerates the §3 benchmark characterization
// table (no-DTM IPC, power, peak temperature per benchmark).
func BenchmarkCharacterise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		rows, err := experiments.Characterise(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var maxT float64
		for _, row := range rows {
			if row.MaxTemp > maxT {
				maxT = row.MaxTemp
			}
		}
		b.ReportMetric(maxT, "maxTempC")
	}
}

// BenchmarkFig3a regenerates Figure 3a (PI-Hyb slowdown vs. max duty
// cycle, DVS-stall) and reports the best duty cycle and its slowdown.
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3a(context.Background(), newRunner(b), true)
		if err != nil {
			b.Fatal(err)
		}
		best := res.BestDuty()
		b.ReportMetric(best, "bestDuty")
		for _, row := range res.Rows {
			if row.DutyCycle == best {
				b.ReportMetric(row.MeanSlowdown, "slowdown")
			}
		}
	}
}

// BenchmarkFig3aIdeal is Figure 3a for idealized (stall-free) DVS, where
// only the mildest gating is justified.
func BenchmarkFig3aIdeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3a(context.Background(), newRunner(b), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestDuty(), "bestDuty")
	}
}

// BenchmarkFig3b regenerates Figure 3b (stand-alone fixed fetch gating vs.
// duty cycle, with the DVS overhead reference line).
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3b(context.Background(), newRunner(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DVSSlowdown, "dvsSlowdown")
		// The harshest FG setting's slowdown: the linear-regime endpoint.
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.MeanSlowdown, "harshFGSlowdown")
	}
}

func reportFig4(b *testing.B, res experiments.Fig4Result) {
	b.Helper()
	for _, p := range experiments.Fig4PolicyOrder {
		if res.Violations[p] {
			b.Errorf("policy %s had thermal violations", p)
		}
	}
	b.ReportMetric(res.Mean("FG"), "fg")
	b.ReportMetric(res.Mean("DVS"), "dvs")
	b.ReportMetric(res.Mean("PI-Hyb"), "pihyb")
	b.ReportMetric(res.Mean("Hyb"), "hyb")
	b.ReportMetric(100*res.OverheadReduction("Hyb"), "hybOverheadCut%")
}

// BenchmarkFig4a regenerates Figure 4a (policy comparison, DVS-stall): the
// headline result — hybrids cut a large share of DVS's DTM overhead.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(context.Background(), newRunner(b), true)
		if err != nil {
			b.Fatal(err)
		}
		reportFig4(b, res)
	}
}

// BenchmarkFig4b regenerates Figure 4b (policy comparison, DVS-ideal).
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(context.Background(), newRunner(b), false)
		if err != nil {
			b.Fatal(err)
		}
		reportFig4(b, res)
	}
}

// BenchmarkStepSize regenerates the §4.1 step-size study: the spread
// between binary and continuous DVS should be small.
func BenchmarkStepSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		stall, err := experiments.StepSizeStudy(context.Background(), r, true)
		if err != nil {
			b.Fatal(err)
		}
		ideal, err := experiments.StepSizeStudy(context.Background(), r, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*stall.MaxSpread(), "stallSpread%")
		b.ReportMetric(100*ideal.MaxSpread(), "idealSpread%")
	}
}

// BenchmarkVoltageFloor regenerates the §4.1 low-voltage search.
func BenchmarkVoltageFloor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.VoltageFloor(context.Background(), newRunner(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Floor(), "floor%")
	}
}

// BenchmarkCrossover regenerates the §5.1 crossover-invariance study.
func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CrossoverInvariance(context.Background(), newRunner(b))
		if err != nil {
			b.Fatal(err)
		}
		duties := map[float64]bool{}
		for _, d := range res.BestDutyPerVMin {
			duties[d] = true
		}
		b.ReportMetric(float64(len(duties)), "distinctBestDuties")
		b.ReportMetric(res.BestDutyHyb, "hybBestDuty")
	}
}

// benchSuiteWorkers runs the nine-benchmark Hyb suite (baseline + policy
// run per benchmark, 18 simulations) at the given worker-pool size. The
// Workers1/Workers4 pair measures the parallel experiment engine's
// speedup; results are byte-identical across worker counts (asserted by
// TestFig4ParallelDeterminism), so only wall-clock changes.
func benchSuiteWorkers(b *testing.B, workers int) {
	opts := benchOptions()
	opts.Workers = workers
	for i := 0; i < b.N; i++ {
		r, err := experiments.NewRunner(opts)
		if err != nil {
			b.Fatal(err)
		}
		ms, err := r.Suite(experiments.HybPolicy(opts.Config, true))
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != len(opts.Benchmarks) {
			b.Fatalf("suite returned %d measurements", len(ms))
		}
	}
}

// BenchmarkSuiteWorkers1 is the serial reference for the suite speedup.
func BenchmarkSuiteWorkers1(b *testing.B) { benchSuiteWorkers(b, 1) }

// BenchmarkSuiteWorkers4 is the same suite on four workers; on a 4-core
// machine it completes the 18 independent simulations ≥2× faster.
func BenchmarkSuiteWorkers4(b *testing.B) { benchSuiteWorkers(b, 4) }

// --- Ablation benches (design choices called out in DESIGN.md) ----------

// BenchmarkAblationFetchQueue shows the fetch-gating knee depends on
// front-end buffering: with a deep fetch queue, mild gating is hidden by
// ILP; with a minimal queue the same gating costs measurably more.
func BenchmarkAblationFetchQueue(b *testing.B) {
	prof, _ := trace.ByName("gzip")
	for i := 0; i < b.N; i++ {
		ipcLoss := func(ifq int) float64 {
			cfg := cpu.DefaultConfig()
			cfg.IFQSize = ifq
			run := func(gate float64) float64 {
				gen, err := trace.NewGenerator(prof)
				if err != nil {
					b.Fatal(err)
				}
				c, err := cpu.New(cfg, gen)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Run(500_000, 0, nil); err != nil {
					b.Fatal(err)
				}
				var act cpu.Activity
				if _, err := c.Run(500_000, gate, &act); err != nil {
					b.Fatal(err)
				}
				return act.IPC()
			}
			return 1 - run(0.05)/run(0)
		}
		b.ReportMetric(100*ipcLoss(16), "deepIFQloss%")
		b.ReportMetric(100*ipcLoss(2), "shallowIFQloss%")
	}
}

// BenchmarkAblationThermalStep verifies the paper's 10 000-cycle thermal
// step: against a 10× finer reference the temperature error stays far
// below 0.1 °C.
func BenchmarkAblationThermalStep(b *testing.B) {
	fp := floorplan.EV6()
	for i := 0; i < b.N; i++ {
		run := func(stepCycles float64) float64 {
			m, err := hotspot.NewModel(fp, hotspot.DefaultPackage())
			if err != nil {
				b.Fatal(err)
			}
			p := make([]float64, fp.NumBlocks())
			for j := range p {
				p[j] = 30 * fp.Block(j).Rect.Area() / fp.BlockArea()
			}
			m.InitUniform(60)
			dt := stepCycles / 3e9
			for t := 0.0; t < 5e-3; t += dt {
				if err := m.Step(p, dt); err != nil {
					b.Fatal(err)
				}
			}
			_, maxT := m.MaxBlockTemp()
			return maxT
		}
		coarse := run(10_000)
		fine := run(1_000)
		b.ReportMetric(coarse-fine, "stepErrC")
	}
}

// BenchmarkAblationLeakage quantifies the temperature contribution of the
// leakage/temperature feedback loop by disabling it.
func BenchmarkAblationLeakage(b *testing.B) {
	prof, _ := trace.ByName("gzip")
	for i := 0; i < b.N; i++ {
		run := func(leak power.LeakageConfig) float64 {
			cfg := benchOptions().Config
			cfg.Leakage = leak
			sim, err := core.New(cfg, prof, nil)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(benchInstructions)
			if err != nil {
				b.Fatal(err)
			}
			return res.MaxTemp
		}
		withLeak := run(power.DefaultLeakage())
		noLeak := run(power.LeakageConfig{TotalAtRef: 0, TRef: 85, Beta: 0})
		b.ReportMetric(withLeak-noLeak, "leakDeltaC")
	}
}

// BenchmarkAblationFGGain sweeps the fetch-gating integral gain to show
// the broad flat optimum DefaultFGGain sits in (the paper confirms its
// controller settings by exhaustive search).
func BenchmarkAblationFGGain(b *testing.B) {
	prof, _ := trace.ByName("crafty")
	for i := 0; i < b.N; i++ {
		cfg := benchOptions().Config
		base := func() core.Result {
			sim, err := core.New(cfg, prof, nil)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(benchInstructions)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}()
		basePerInst := base.WallTime / float64(base.Instructions)
		for _, gain := range []float64{150, 600, 2400} {
			pol, err := dtm.FetchGating(cfg.Trigger, gain, 2.0/3)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := core.New(cfg, prof, pol)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(benchInstructions)
			if err != nil {
				b.Fatal(err)
			}
			slow := res.WallTime / float64(res.Instructions) / basePerInst
			b.ReportMetric(slow, fmt.Sprintf("slowdown@ki%d", int(gain)))
		}
	}
}

// --- Substrate microbenchmarks ------------------------------------------

// BenchmarkCPUCycles measures raw simulation speed of the OoO core model
// in simulated cycles per second.
func BenchmarkCPUCycles(b *testing.B) {
	prof, _ := trace.ByName("gzip")
	gen, err := trace.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cpu.New(cpu.DefaultConfig(), gen)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Run(200_000, 0, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	const chunk = 100_000
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(chunk, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(chunk*b.N)/b.Elapsed().Seconds(), "simCycles/s")
}

// BenchmarkThermalStepBE measures one backward-Euler thermal step of the
// EV6 model (the per-10k-cycle cost of the coupled loop).
func BenchmarkThermalStepBE(b *testing.B) {
	fp := floorplan.EV6()
	m, err := hotspot.NewModel(fp, hotspot.DefaultPackage())
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, fp.NumBlocks())
	for j := range p {
		p[j] = 30 * fp.Block(j).Rect.Area() / fp.BlockArea()
	}
	if err := m.Init(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(p, 3.33e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGen measures instruction stream generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	prof, _ := trace.ByName("gcc")
	gen, err := trace.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	var in trace.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&in)
	}
}

// BenchmarkPowerCompute measures the per-interval power model evaluation.
func BenchmarkPowerCompute(b *testing.B) {
	fp := floorplan.EV6()
	tech := dvfs.Default130nm()
	pm, err := power.NewModel(fp, tech, power.EV6Spec(), power.DefaultLeakage())
	if err != nil {
		b.Fatal(err)
	}
	act := make([]float64, fp.NumBlocks())
	temps := make([]float64, fp.NumBlocks())
	for i := range act {
		act[i] = 0.4
		temps[i] = 80
	}
	dst := make([]float64, fp.NumBlocks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pm.Compute(dst, act, 1, tech.VNominal, tech.FNominal, temps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoupledLoop measures the full coupled simulator (CPU + power +
// thermal + sensors + policy) in simulated instructions per second.
func BenchmarkCoupledLoop(b *testing.B) {
	prof, _ := trace.ByName("bzip2")
	cfg := benchOptions().Config
	ladder, err := dvfs.Binary(cfg.Tech, cfg.VMinFrac)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := dtm.Hyb(cfg.Trigger, 0.4, experiments.CrossoverGateStall, ladder)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := core.New(cfg, prof, pol)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)/b.Elapsed().Seconds(), "simInsts/s")
	}
}

// benchCoupled runs the BenchmarkCoupledLoop workload (bzip2 under Hyb,
// DVS-stall) with the given per-iteration tracer factory, so the
// Tracer* benches differ from the baseline only in the tracer.
func benchCoupled(b *testing.B, mkTracer func() obs.Tracer) {
	b.Helper()
	prof, _ := trace.ByName("bzip2")
	cfg := benchOptions().Config
	ladder, err := dvfs.Binary(cfg.Tech, cfg.VMinFrac)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := dtm.Hyb(cfg.Trigger, 0.4, experiments.CrossoverGateStall, ladder)
		if err != nil {
			b.Fatal(err)
		}
		c := cfg
		if mkTracer != nil {
			c.Tracer = mkTracer()
		}
		sim, err := core.New(c, prof, pol)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)/b.Elapsed().Seconds(), "simInsts/s")
	}
}

// BenchmarkTracerNil is the disabled-tracer fast path: the CI overhead
// gate compares it against BenchmarkCoupledLoop (pre-observability
// baseline shape) and fails if the nil check costs more than 2%.
func BenchmarkTracerNil(b *testing.B) { benchCoupled(b, nil) }

// BenchmarkTracerMetrics measures the aggregate-counters-only tracer.
func BenchmarkTracerMetrics(b *testing.B) {
	reg := obs.NewRegistry()
	benchCoupled(b, func() obs.Tracer { return obs.NewMetricsTracer(reg) })
}

// BenchmarkTracerRing measures the post-mortem ring buffer (copies every
// event's slices into retained storage).
func BenchmarkTracerRing(b *testing.B) {
	benchCoupled(b, func() obs.Tracer { return obs.NewRing(4096) })
}

// BenchmarkTracerJSONL measures the full streaming sink with I/O factored
// out (io.Discard), i.e. pure serialization cost.
func BenchmarkTracerJSONL(b *testing.B) {
	benchCoupled(b, func() obs.Tracer { return obs.NewJSONL(io.Discard) })
}

// benchCoupledProfiled is benchCoupled with a StageProfiler attached
// (one per iteration, matching production use of one profiler per run).
func benchCoupledProfiled(b *testing.B, mkProfiler func() *obs.StageProfiler) {
	b.Helper()
	prof, _ := trace.ByName("bzip2")
	cfg := benchOptions().Config
	ladder, err := dvfs.Binary(cfg.Tech, cfg.VMinFrac)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := dtm.Hyb(cfg.Trigger, 0.4, experiments.CrossoverGateStall, ladder)
		if err != nil {
			b.Fatal(err)
		}
		c := cfg
		if mkProfiler != nil {
			c.Profiler = mkProfiler()
		}
		sim, err := core.New(c, prof, pol)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)/b.Elapsed().Seconds(), "simInsts/s")
	}
}

// BenchmarkStageProfilerOff is the disabled-profiler fast path: identical
// workload to BenchmarkCoupledLoop with cfg.Profiler left nil, pinning
// the ~1% hoisted-nil-check budget the tentpole promises.
func BenchmarkStageProfilerOff(b *testing.B) { benchCoupledProfiled(b, nil) }

// BenchmarkStageProfilerOn measures profiler-on cost at the default
// step-sampling period (< 10% is the documented bound).
func BenchmarkStageProfilerOn(b *testing.B) {
	benchCoupledProfiled(b, func() *obs.StageProfiler { return obs.NewStageProfiler(0) })
}

// BenchmarkStatsTTest measures the paired t-test used for the 99%
// significance statements (fast; exists to keep the numeric path covered
// under -bench as well as -test).
func BenchmarkStatsTTest(b *testing.B) {
	x := []float64{1.15, 1.18, 1.22, 1.19, 1.25, 1.17, 1.21, 1.16, 1.24}
	y := []float64{1.10, 1.12, 1.18, 1.13, 1.20, 1.12, 1.15, 1.11, 1.19}
	for i := 0; i < b.N; i++ {
		if _, err := stats.PairedTTest(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalVsFG regenerates the §2 comparison: local toggling confers
// little advantage over fetch gating.
func BenchmarkLocalVsFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LocalVsFG(context.Background(), newRunner(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FGMean(), "fg")
		b.ReportMetric(res.LocalMean(), "local")
	}
}

// BenchmarkMerit evaluates the §6 figure-of-merit study: the analytic
// crossover prediction from the physical models alone.
func BenchmarkMerit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MeritStudy(benchOptions(), "gzip")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1/res.PredictedCrossoverGate, "predictedDuty")
		b.ReportMetric(res.DVS.DeltaT, "dvsDeltaT")
	}
}

// BenchmarkGridThermal measures the grid-mode steady-state solve (the
// reference the block model is validated against) and reports solved grid
// cells per second, the metric the CI perf gate tracks as
// thermal.cells_per_sec.
func BenchmarkGridThermal(b *testing.B) {
	fp := floorplan.EV6()
	g, err := hotspot.NewGridModel(fp, hotspot.DefaultPackage(), 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, fp.NumBlocks())
	for j := range p {
		p[j] = 30 * fp.Block(j).Rect.Area() / fp.BlockArea()
	}
	dst := make([]float64, g.NumCells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.SteadyStateInto(dst, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumCells()*b.N)/b.Elapsed().Seconds(), "cells/s")
}
