//go:build !race

// Golden regression tests over the paper's headline numbers, pinned at a
// fixed small instruction budget so future performance or refactoring PRs
// cannot silently break the reproduction. The budget (10 M instructions,
// default warm-up/settle phases — shorter phases leave the die too cool
// for DTM to engage at all) and the benchmark subset were calibrated
// empirically: a sweep of all nine benchmarks at this budget showed bzip2
// alone reproduces the full-suite optima — the duty-3 ILP/DVS crossover
// (duty 20 for ideal DVS) and both hybrids beating DVS — at a fraction of
// the cost (~30 simulations, a few minutes). Excluded under -race: these
// are serial numeric regressions (concurrency is covered by the
// determinism and singleflight tests in internal/experiments) and the
// race detector's ~10× slowdown on the heaviest compute in the repo buys
// nothing here.
package hybriddtm

import (
	"context"
	"testing"

	"hybriddtm/internal/core"
	"hybriddtm/internal/experiments"
	"hybriddtm/internal/trace"
)

// goldenBenchmarks is the calibrated subset: the full nine-benchmark means
// are reproduced in EXPERIMENTS.md; this subset keeps the same optima at a
// fraction of the cost. Calibrated margins at 10 M instructions: the duty-3
// stall optimum beats the runner-up (duty 2.5) by 0.0039 slowdown, the
// duty-20 ideal optimum beats duty 3 by 0.0089, and the tightest Fig4 gap
// (Hyb vs. DVS, stalled) is 0.0026.
var goldenBenchmarks = []string{"bzip2"}

func goldenRunner(t *testing.T) *experiments.Runner {
	t.Helper()
	opts := experiments.DefaultOptions()
	opts.Instructions = 10_000_000
	opts.Config = core.DefaultConfig()
	opts.Benchmarks = nil
	for _, name := range goldenBenchmarks {
		p, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		opts.Benchmarks = append(opts.Benchmarks, p)
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGoldenNumbers runs the headline experiments once on a shared runner
// (the baseline cache is reused across subtests) and asserts the paper's
// claims. Subtests are sequential by design — the interesting parallelism
// is inside the runner.
func TestGoldenNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regressions are slow")
	}
	r := goldenRunner(t)
	ctx := context.Background()

	t.Run("Fig3a-crossover", func(t *testing.T) {
		stall, err := experiments.Fig3a(ctx, r, true)
		if err != nil {
			t.Fatal(err)
		}
		if d := stall.BestDuty(); d != 3 {
			t.Errorf("Fig3a(stall) best duty = %g, want 3 (the paper's §5.1 crossover)\n%s", d, stall)
		}
		ideal, err := experiments.Fig3a(ctx, r, false)
		if err != nil {
			t.Fatal(err)
		}
		if d := ideal.BestDuty(); d != 20 {
			t.Errorf("Fig3a(ideal) best duty = %g, want 20 (mildest gating)\n%s", d, ideal)
		}
	})

	t.Run("Fig4-hybrid-beats-DVS", func(t *testing.T) {
		for _, stall := range []bool{true, false} {
			f4, err := experiments.Fig4(ctx, r, stall)
			if err != nil {
				t.Fatal(err)
			}
			dvs := f4.Mean("DVS")
			for _, hyb := range []string{"PI-Hyb", "Hyb"} {
				if m := f4.Mean(hyb); m >= dvs {
					t.Errorf("stall=%v: %s mean slowdown %.4f !< DVS %.4f (paper: hybrids reduce DTM overhead)",
						stall, hyb, m, dvs)
				}
			}
			if f4.Violations["PI-Hyb"] || f4.Violations["Hyb"] {
				t.Errorf("stall=%v: hybrid policy violated the thermal limit", stall)
			}
		}
	})

	t.Run("StepSize-bounded", func(t *testing.T) {
		// Paper §4.1 claims DVS performance differs by at most 0.4 %
		// across ladder granularities. That bound does NOT reproduce on
		// this stack: the sensor path here quantizes and dithers readings
		// (see DESIGN.md), which makes frequent multi-step setting changes
		// an observable cost, so the measured spread at the golden budget
		// is 6.3 % with stalled switches (binary 1.133 … continuous 1.168)
		// and 2.0 % idealized. The regression pins the repo's own
		// calibrated envelope instead — loose enough for noise, tight
		// enough to catch a broken ladder or controller — plus the
		// engineering claim the bound supports: binary DVS stays within a
		// few percent of the best ladder (with stalled switches it is the
		// best), which is why Hyb can afford to use binary DVS.
		for _, c := range []struct {
			stall bool
			bound float64
		}{{true, 0.09}, {false, 0.03}} {
			ss, err := experiments.StepSizeStudy(ctx, r, c.stall)
			if err != nil {
				t.Fatal(err)
			}
			if sp := ss.MaxSpread(); sp >= c.bound {
				t.Errorf("stall=%v: DVS step-size spread = %.4f, want < %.2f\n%s",
					c.stall, sp, c.bound, ss)
			}
			binary, best := ss.MeanSlowdown[2], 2.0
			for _, m := range ss.MeanSlowdown {
				if m < best {
					best = m
				}
			}
			if binary >= best+0.04 {
				t.Errorf("stall=%v: binary DVS mean %.4f is not within 0.04 of the best ladder (%.4f)",
					c.stall, binary, best)
			}
		}
	})
}
