// Process-level contract test for cmd/dtmlint: the repo must lint clean,
// a planted violation must fail the build with a finding on the right
// line, and the go vet -vettool integration must honor the unit-checker
// protocol. This is the executable form of the CI lint gate.
package hybriddtm

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildDtmlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), exeName("dtmlint"))
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dtmlint").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDtmlintCLI checks the standalone driver: exit 0 with no output on
// the real tree, exit 1 with a located finding on a module that plants a
// detguard violation, and exit 0 again once the violation carries a
// //dtmlint:allow annotation.
func TestDtmlintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and type-checks the module")
	}
	bin := buildDtmlint(t)

	t.Run("repo-clean", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dtmlint ./... failed: %v\n%s", err, out)
		}
		if len(out) != 0 {
			t.Errorf("clean run produced output:\n%s", out)
		}
	})

	t.Run("planted-violation", func(t *testing.T) {
		dir := plantModule(t, `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("dtmlint on planted violation: err=%v (want exit 1)\n%s", err, out)
		}
		if !strings.Contains(string(out), "detguard") || !strings.Contains(string(out), "clock.go:5") {
			t.Errorf("finding not located at clock.go:5:\n%s", out)
		}
	})

	t.Run("allow-suppresses", func(t *testing.T) {
		dir := plantModule(t, `package core

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //dtmlint:allow detguard provenance stamp, not simulation state
}
`)
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("annotated violation still fails: %v\n%s", err, out)
		}
	})
}

// TestDtmlintVettool drives dtmlint through go vet, which exercises the
// -V=full handshake, the .cfg protocol, and exit-code conventions.
func TestDtmlintVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and runs go vet over a module")
	}
	bin := buildDtmlint(t)

	t.Run("planted-violation", func(t *testing.T) {
		dir := plantModule(t, `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet -vettool passed on planted violation:\n%s", out)
		}
		if !strings.Contains(string(out), "detguard") {
			t.Errorf("vet output lacks the detguard finding:\n%s", out)
		}
	})

	t.Run("clean-module", func(t *testing.T) {
		dir := plantModule(t, `package core

func Stamp() int64 { return 42 }
`)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet -vettool on clean module: %v\n%s", err, out)
		}
	})
}

// TestDtmlintAllocguardPlant copies the working tree, plants a
// fmt.Sprintf inside power.Compute — a //dtmlint:allocfree root backed
// by TestComputeAllocationFree — and demands both drivers report it at
// the planted file:line. This proves the real annotation is present and
// load-bearing, not just that the analyzer works on fixtures.
func TestDtmlintAllocguardPlant(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and type-checks a copied tree")
	}
	bin := buildDtmlint(t)
	dir := copyTree(t)

	const marker = "dst = dst[:n]"
	path := filepath.Join(dir, "internal", "power", "power.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	planted := -1
	for i, l := range lines {
		if strings.Contains(l, marker) {
			planted = i + 2 // 1-based line of the inserted statement
			lines = append(lines[:i+1], append([]string{`	_ = fmt.Sprintf("planted %d", n)`}, lines[i+1:]...)...)
			break
		}
	}
	if planted < 0 {
		t.Fatalf("marker %q not found in power.Compute", marker)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	wantLoc := fmt.Sprintf("power.go:%d", planted)

	t.Run("standalone", func(t *testing.T) {
		cmd := exec.Command(bin, "./internal/power")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("dtmlint on planted allocation: err=%v (want exit 1)\n%s", err, out)
		}
		if !strings.Contains(string(out), "allocguard") || !strings.Contains(string(out), wantLoc) {
			t.Errorf("allocguard finding not located at %s:\n%s", wantLoc, out)
		}
	})

	t.Run("vettool", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/power")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet -vettool passed on planted allocation:\n%s", out)
		}
		if !strings.Contains(string(out), "allocguard") || !strings.Contains(string(out), wantLoc) {
			t.Errorf("vet output lacks the located allocguard finding:\n%s", out)
		}
	})
}

// TestDtmlintLockcheckPlant plants an unguarded access to a guarded-by
// annotated field and checks the standalone driver reports it.
func TestDtmlintLockcheckPlant(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and type-checks the module")
	}
	bin := buildDtmlint(t)
	dir := plantModule(t, `package core

import "sync"

type Box struct {
	mu sync.Mutex
	n  int // guarded-by: mu
}

func Peek(b *Box) int { return b.n }
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("dtmlint on planted lockcheck violation: err=%v (want exit 1)\n%s", err, out)
	}
	if !strings.Contains(string(out), "lockcheck") || !strings.Contains(string(out), "clock.go:10") {
		t.Errorf("lockcheck finding not located at clock.go:10:\n%s", out)
	}
}

// TestDtmlintReportArtifact runs the standalone driver twice with
// -allocguard.report and requires byte-identical artifacts naming the
// power root — the property CI relies on when it uploads the file.
func TestDtmlintReportArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and type-checks the module")
	}
	bin := buildDtmlint(t)
	read := func(name string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		cmd := exec.Command(bin, "-allocguard.report="+path, "./internal/power", "./internal/rc")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("dtmlint -allocguard.report: %v\n%s", err, out)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	first, second := read("a.txt"), read("b.txt")
	if first != second {
		t.Errorf("report artifact not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
	for _, want := range []string{"root (*Model).Compute", "root (*Network).SteadyStateInto"} {
		if !strings.Contains(first, want) {
			t.Errorf("report artifact missing %q:\n%s", want, first)
		}
	}
}

// copyTree clones the checked-in working tree (tracked files only) into
// a temp dir so tests can mutate sources freely.
func copyTree(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("git", "ls-files").Output()
	if err != nil {
		t.Fatalf("git ls-files: %v", err)
	}
	dir := t.TempDir()
	for _, name := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		data, err := os.ReadFile(name)
		if err != nil {
			// Tracked but deleted in the working tree: skip.
			continue
		}
		dst := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// plantModule writes a throwaway single-package module whose package is
// named core — inside detguard's deterministic scope — containing src as
// clock.go.
func plantModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":        "module planted\n\ngo 1.21\n",
		"core/clock.go": src,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
