// Process-level contract test for cmd/dtmlint: the repo must lint clean,
// a planted violation must fail the build with a finding on the right
// line, and the go vet -vettool integration must honor the unit-checker
// protocol. This is the executable form of the CI lint gate.
package hybriddtm

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildDtmlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), exeName("dtmlint"))
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dtmlint").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDtmlintCLI checks the standalone driver: exit 0 with no output on
// the real tree, exit 1 with a located finding on a module that plants a
// detguard violation, and exit 0 again once the violation carries a
// //dtmlint:allow annotation.
func TestDtmlintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and type-checks the module")
	}
	bin := buildDtmlint(t)

	t.Run("repo-clean", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dtmlint ./... failed: %v\n%s", err, out)
		}
		if len(out) != 0 {
			t.Errorf("clean run produced output:\n%s", out)
		}
	})

	t.Run("planted-violation", func(t *testing.T) {
		dir := plantModule(t, `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("dtmlint on planted violation: err=%v (want exit 1)\n%s", err, out)
		}
		if !strings.Contains(string(out), "detguard") || !strings.Contains(string(out), "clock.go:5") {
			t.Errorf("finding not located at clock.go:5:\n%s", out)
		}
	})

	t.Run("allow-suppresses", func(t *testing.T) {
		dir := plantModule(t, `package core

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //dtmlint:allow detguard provenance stamp, not simulation state
}
`)
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("annotated violation still fails: %v\n%s", err, out)
		}
	})
}

// TestDtmlintVettool drives dtmlint through go vet, which exercises the
// -V=full handshake, the .cfg protocol, and exit-code conventions.
func TestDtmlintVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds dtmlint and runs go vet over a module")
	}
	bin := buildDtmlint(t)

	t.Run("planted-violation", func(t *testing.T) {
		dir := plantModule(t, `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet -vettool passed on planted violation:\n%s", out)
		}
		if !strings.Contains(string(out), "detguard") {
			t.Errorf("vet output lacks the detguard finding:\n%s", out)
		}
	})

	t.Run("clean-module", func(t *testing.T) {
		dir := plantModule(t, `package core

func Stamp() int64 { return 42 }
`)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet -vettool on clean module: %v\n%s", err, out)
		}
	})
}

// plantModule writes a throwaway single-package module whose package is
// named core — inside detguard's deterministic scope — containing src as
// clock.go.
func plantModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":        "module planted\n\ngo 1.21\n",
		"core/clock.go": src,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
