module hybriddtm

go 1.22
